// Package harddist implements the paper's hard input distribution D_MM
// (Section 3.1) for maximal matching in the distributed sketching model,
// together with the instance metadata the lower-bound machinery needs:
// the hidden index j⋆, the relabeling permutation σ, the public/unique
// vertex classification, and the per-copy edge-survival indicators
// M_{i,j} that the information-theoretic argument reasons about.
//
// Construction (paper's notation): fix an (r,t)-RS graph G^RS on N
// vertices. Draw j⋆ uniform in [t] and let V⋆ be the 2r vertices of the
// induced matching M^RS_{j⋆}. Take k copies G_1,...,G_k of G^RS, dropping
// each edge independently with probability 1/2 in each copy. Relabel with
// a uniform permutation σ of [n], n = N - 2r + 2rk: the N - 2r vertices
// outside V⋆ receive one shared block of labels (the "public" vertices —
// they appear in every copy), while each copy's V⋆ vertices receive fresh
// labels (its "unique" vertices). G is the union of the relabeled copies.
package harddist

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

// Params configures the sampler.
type Params struct {
	// RS is the base Ruzsa–Szemerédi graph.
	RS *rsgraph.RSGraph
	// K is the number of noisy copies. The paper sets K = t; smaller
	// values give scaled-down instances for sweeps.
	K int
	// DropProb is the probability each edge is dropped in each copy
	// (paper: 1/2).
	DropProb float64
}

// NewParams returns the paper's parameterization for a base RS graph:
// K = t and DropProb = 1/2.
func NewParams(rs *rsgraph.RSGraph) Params {
	return Params{RS: rs, K: rs.T(), DropProb: 0.5}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.RS == nil:
		return fmt.Errorf("harddist: nil RS graph")
	case p.RS.T() == 0 || p.RS.R() == 0:
		return fmt.Errorf("harddist: degenerate RS graph (r=%d, t=%d)", p.RS.R(), p.RS.T())
	case p.K < 1:
		return fmt.Errorf("harddist: K must be >= 1, got %d", p.K)
	case p.DropProb < 0 || p.DropProb > 1:
		return fmt.Errorf("harddist: DropProb %v outside [0,1]", p.DropProb)
	}
	return nil
}

// N returns the number of vertices n = N_RS - 2r + 2rK of sampled
// instances.
func (p Params) N() int {
	return p.RS.N() - 2*p.RS.R() + 2*p.RS.R()*p.K
}

// Instance is one sample from D_MM plus its ground-truth metadata. The
// metadata is available to experiment harnesses and (per the paper's
// Remark 3.6) to referees, but never to players.
type Instance struct {
	// G is the union graph on n vertices.
	G *graph.Graph
	// Params echoes the sampler configuration.
	Params Params
	// JStar is the hidden special matching index in [0, t).
	JStar int

	// publicLabel[p] is the G-label of the p-th public RS vertex.
	publicLabel []int
	// uniqueLabel[i][u] is the G-label of the u-th V⋆ vertex in copy i.
	uniqueLabel [][]int
	// class[v] is the vertex class of G-label v: -1 public, else copy id.
	class []int
	// rsIndex maps each RS vertex to (isPublic, position): position in the
	// public enumeration or in the V⋆ enumeration.
	rsPublicPos []int // -1 if in V⋆
	rsUniquePos []int // -1 if public
	// survive[i][j][x] reports whether edge x of matching j survived in
	// copy i.
	survive [][][]bool
}

// Sample draws an instance. The permutation σ, j⋆ and all edge drops come
// from src.
func Sample(p Params, src *rng.Source) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	jStar := src.Intn(p.RS.T())
	sigma := src.Perm(p.N())
	survive := make([][][]bool, p.K)
	for i := 0; i < p.K; i++ {
		survive[i] = make([][]bool, p.RS.T())
		for j := 0; j < p.RS.T(); j++ {
			survive[i][j] = make([]bool, len(p.RS.Matchings[j]))
			for x := range survive[i][j] {
				survive[i][j][x] = src.Float64() >= p.DropProb
			}
		}
	}
	return Build(p, jStar, sigma, survive)
}

// Build constructs the instance for fully specified randomness: the
// special index j⋆, the label permutation σ (length n), and the survival
// indicators survive[i][j][x] for edge x of matching j in copy i. It is
// the deterministic core of Sample, and lets package proofcheck enumerate
// the entire distribution of micro instances exactly.
func Build(p Params, jStar int, sigma []int, survive [][][]bool) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rs := p.RS
	nRS, r, t := rs.N(), rs.R(), rs.T()
	if jStar < 0 || jStar >= t {
		return nil, fmt.Errorf("harddist: jStar %d outside [0,%d)", jStar, t)
	}
	if len(sigma) != p.N() {
		return nil, fmt.Errorf("harddist: sigma length %d, want %d", len(sigma), p.N())
	}
	seen := make([]bool, len(sigma))
	for _, v := range sigma {
		if v < 0 || v >= len(sigma) || seen[v] {
			return nil, fmt.Errorf("harddist: sigma is not a permutation")
		}
		seen[v] = true
	}
	if len(survive) != p.K {
		return nil, fmt.Errorf("harddist: survive has %d copies, want %d", len(survive), p.K)
	}
	for i := range survive {
		if len(survive[i]) != t {
			return nil, fmt.Errorf("harddist: survive[%d] has %d matchings, want %d", i, len(survive[i]), t)
		}
		for j := range survive[i] {
			if len(survive[i][j]) != len(rs.Matchings[j]) {
				return nil, fmt.Errorf("harddist: survive[%d][%d] has %d slots, want %d",
					i, j, len(survive[i][j]), len(rs.Matchings[j]))
			}
		}
	}

	inst := &Instance{Params: p, JStar: jStar}

	// Classify RS vertices: V⋆ = endpoints of matching jStar.
	inVStar := make([]bool, nRS)
	for _, v := range rs.MatchingVertices(jStar) {
		inVStar[v] = true
	}
	inst.rsPublicPos = make([]int, nRS)
	inst.rsUniquePos = make([]int, nRS)
	pubCount, uniqCount := 0, 0
	for v := 0; v < nRS; v++ {
		if inVStar[v] {
			inst.rsPublicPos[v] = -1
			inst.rsUniquePos[v] = uniqCount
			uniqCount++
		} else {
			inst.rsPublicPos[v] = pubCount
			inst.rsUniquePos[v] = -1
			pubCount++
		}
	}
	if uniqCount != 2*r {
		return nil, fmt.Errorf("harddist: |V⋆| = %d, want %d", uniqCount, 2*r)
	}

	// σ assigns labels: public block first, then per-copy unique blocks.
	n := p.N()
	inst.publicLabel = make([]int, pubCount)
	for l := 0; l < pubCount; l++ {
		inst.publicLabel[l] = sigma[l]
	}
	inst.uniqueLabel = make([][]int, p.K)
	for i := 0; i < p.K; i++ {
		inst.uniqueLabel[i] = make([]int, 2*r)
		for l := 0; l < 2*r; l++ {
			inst.uniqueLabel[i][l] = sigma[pubCount+i*2*r+l]
		}
	}
	inst.class = make([]int, n)
	for v := range inst.class {
		inst.class[v] = -1
	}
	for i := 0; i < p.K; i++ {
		for _, lbl := range inst.uniqueLabel[i] {
			inst.class[lbl] = i
		}
	}

	// Build the union graph from the surviving edges.
	b := graph.NewBuilder(n)
	inst.survive = survive
	for i := 0; i < p.K; i++ {
		for j := 0; j < t; j++ {
			for x, e := range rs.Matchings[j] {
				if survive[i][j][x] {
					b.AddEdge(inst.Label(i, e.U), inst.Label(i, e.V))
				}
			}
		}
	}
	inst.G = b.Build()
	return inst, nil
}

// Label maps RS vertex v in copy i to its G-label.
func (inst *Instance) Label(copy, rsVertex int) int {
	if p := inst.rsPublicPos[rsVertex]; p >= 0 {
		return inst.publicLabel[p]
	}
	return inst.uniqueLabel[copy][inst.rsUniquePos[rsVertex]]
}

// MapEdge maps an RS edge into copy i's G-labels.
func (inst *Instance) MapEdge(copy int, e graph.Edge) graph.Edge {
	return graph.NewEdge(inst.Label(copy, e.U), inst.Label(copy, e.V))
}

// IsPublic reports whether G-label v is a public vertex.
func (inst *Instance) IsPublic(v int) bool { return inst.class[v] == -1 }

// CopyOf returns the copy owning unique G-label v, or -1 when v is public.
func (inst *Instance) CopyOf(v int) int { return inst.class[v] }

// PublicVertices returns the G-labels of the public vertices.
func (inst *Instance) PublicVertices() []int {
	return append([]int(nil), inst.publicLabel...)
}

// RSPublicVertices returns the RS-graph vertices outside V⋆ in ascending
// order — the p-th entry is the RS vertex held by the p-th public player.
func (inst *Instance) RSPublicVertices() []int {
	out := make([]int, 0, len(inst.publicLabel))
	for v, pos := range inst.rsPublicPos {
		if pos >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// UniqueVertices returns the G-labels of copy i's unique vertices.
func (inst *Instance) UniqueVertices(copy int) []int {
	return append([]int(nil), inst.uniqueLabel[copy]...)
}

// Survived reports whether edge x of matching j survived in copy i.
func (inst *Instance) Survived(copy, j, x int) bool {
	return inst.survive[copy][j][x]
}

// SpecialMatchingFull returns M^RS_{i,j⋆}: copy i's image of the special
// matching before edge dropping (the superset used by the Section 4
// reduction). It is a function of σ and j⋆ only.
func (inst *Instance) SpecialMatchingFull(copy int) []graph.Edge {
	src := inst.Params.RS.Matchings[inst.JStar]
	out := make([]graph.Edge, len(src))
	for x, e := range src {
		out[x] = inst.MapEdge(copy, e)
	}
	return out
}

// SpecialMatchingSurvived returns the edges of M_{i,j⋆} that survived the
// drop, in G-labels.
func (inst *Instance) SpecialMatchingSurvived(copy int) []graph.Edge {
	src := inst.Params.RS.Matchings[inst.JStar]
	var out []graph.Edge
	for x, e := range src {
		if inst.survive[copy][inst.JStar][x] {
			out = append(out, inst.MapEdge(copy, e))
		}
	}
	return out
}

// SurvivedSpecialCount returns |∪_i M_i|: the total number of surviving
// special edges over all copies (their vertex sets are disjoint, so this
// is a plain sum).
func (inst *Instance) SurvivedSpecialCount() int {
	total := 0
	for i := 0; i < inst.Params.K; i++ {
		for _, ok := range inst.survive[i][inst.JStar] {
			if ok {
				total++
			}
		}
	}
	return total
}

// UniqueUniqueEdges counts the edges of a matching whose endpoints are
// both unique vertices — the quantity Claim 3.1 lower-bounds by k·r/4.
func (inst *Instance) UniqueUniqueEdges(matching []graph.Edge) int {
	count := 0
	for _, e := range matching {
		if !inst.IsPublic(e.U) && !inst.IsPublic(e.V) {
			count++
		}
	}
	return count
}

// Claim31Threshold returns k·r/4, the paper's guaranteed number of
// unique–unique edges in every maximal matching (with probability
// 1 - 2^{-kr/10}).
func (inst *Instance) Claim31Threshold() float64 {
	return float64(inst.Params.K) * float64(inst.Params.RS.R()) / 4
}

// PublicPlayerEdges returns the G-edges seen by the p-th public player:
// all edges of G incident on the p-th public vertex.
func (inst *Instance) PublicPlayerEdges(p int) []graph.Edge {
	v := inst.publicLabel[p]
	var out []graph.Edge
	inst.G.EachNeighbor(v, func(u int) {
		out = append(out, graph.NewEdge(v, u))
	})
	return out
}

// UniquePlayerEdges returns the G-edges seen by unique player (i, v) in
// the paper's augmented model (Section 3.1, "public and unique players"):
// the surviving copy-i images of RS edges incident on RS vertex v. Note a
// unique player holding a public vertex sees only that vertex's copy-i
// edges, not all its G-edges.
func (inst *Instance) UniquePlayerEdges(copy, rsVertex int) []graph.Edge {
	rs := inst.Params.RS
	var out []graph.Edge
	for j, m := range rs.Matchings {
		for x, e := range m {
			if e.U != rsVertex && e.V != rsVertex {
				continue
			}
			if inst.survive[copy][j][x] {
				out = append(out, inst.MapEdge(copy, e))
			}
		}
	}
	return out
}

package mst

import (
	"testing"
	"testing/quick"

	"repro/internal/agm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestExactMSTKnown(t *testing.T) {
	// Triangle with weights 1,2,3: MST = 1+2.
	g := gen.Cycle(3)
	w := map[graph.Edge]int{
		graph.NewEdge(0, 1): 1,
		graph.NewEdge(1, 2): 2,
		graph.NewEdge(0, 2): 3,
	}
	wg, err := NewWeighted(g, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := wg.ExactMSTWeight(); got != 3 {
		t.Errorf("MST = %d, want 3", got)
	}
}

func TestExactMSTDisconnected(t *testing.T) {
	// Two components: edge (0,1) weight 2; edge (2,3) weight 5.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	wg, err := NewWeighted(g, map[graph.Edge]int{
		{U: 0, V: 1}: 2,
		{U: 2, V: 3}: 5,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := wg.ExactMSTWeight(); got != 7 {
		t.Errorf("MSF = %d, want 7", got)
	}
}

func TestNewWeightedValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := NewWeighted(g, map[graph.Edge]int{{U: 0, V: 1}: 1}, 3); err == nil {
		t.Error("missing weight accepted")
	}
	if _, err := NewWeighted(g, map[graph.Edge]int{{U: 0, V: 1}: 1, {U: 1, V: 2}: 9}, 3); err == nil {
		t.Error("overweight accepted")
	}
	if _, err := NewWeighted(g, map[graph.Edge]int{{U: 0, V: 1}: 1, {U: 0, V: 2}: 1}, 3); err == nil {
		t.Error("phantom edge accepted")
	}
}

func TestSketchedEstimatorMatchesExact(t *testing.T) {
	src := rng.NewSource(1)
	coins := rng.NewPublicCoins(2)
	hits := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		g := gen.Gnp(40, 0.2, src)
		wg := RandomWeights(g, 4, src)
		res, err := Run(wg, agm.Config{}, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Exactly() {
			hits++
		}
	}
	if hits < trials*8/10 {
		t.Errorf("estimator exact in %d/%d trials", hits, trials)
	}
}

func TestSketchedEstimatorUnitWeights(t *testing.T) {
	// MaxW = 1 degenerates to spanning forest size.
	src := rng.NewSource(3)
	g := gen.Gnp(30, 0.2, src)
	wg := RandomWeights(g, 1, src)
	res, err := Run(wg, agm.Config{}, rng.NewPublicCoins(4))
	if err != nil {
		t.Fatal(err)
	}
	_, cc := g.Components()
	if res.Exact != g.N()-cc {
		t.Fatalf("unit-weight exact = %d, want n-cc = %d", res.Exact, g.N()-cc)
	}
	if !res.Exactly() {
		t.Errorf("estimate %d != exact %d", res.Estimate, res.Exact)
	}
}

func TestEstimatorOnDisconnectedGraphs(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	wg, err := NewWeighted(g, map[graph.Edge]int{
		{U: 0, V: 1}: 3,
		{U: 1, V: 2}: 1,
		{U: 3, V: 4}: 2,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(wg, agm.Config{}, rng.NewPublicCoins(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact != 6 {
		t.Fatalf("exact = %d, want 6", res.Exact)
	}
	if !res.Exactly() {
		t.Errorf("estimate %d != 6", res.Estimate)
	}
}

func TestKruskalAgainstBruteForceQuick(t *testing.T) {
	// Cross-check Kruskal against summing a maximum-weight-avoiding
	// spanning forest built by exhaustive branch and bound on tiny graphs
	// — here simply against Prim-like recomputation via sorted-edge
	// uniqueness: for distinct weights the MSF is unique, so check the
	// identity w(MSF) = n + Σ cc_i − W·ccFull computed combinatorially.
	f := func(seed uint64) bool {
		src := rng.NewSource(seed)
		n := 4 + src.Intn(8)
		g := gen.Gnp(n, 0.4, src)
		maxW := 1 + src.Intn(5)
		wg := RandomWeights(g, maxW, src)
		// Combinatorial identity evaluation.
		ccSum := 0
		for i := 1; i < maxW; i++ {
			_, cc := wg.thresholded(i).Components()
			ccSum += cc
		}
		_, ccFull := g.Components()
		identity := n + ccSum - maxW*ccFull
		return wg.ExactMSTWeight() == identity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSketchBitsScale(t *testing.T) {
	src := rng.NewSource(7)
	g := gen.Gnp(50, 0.15, src)
	w2 := RandomWeights(g, 2, src)
	w6 := RandomWeights(g, 6, src)
	r2, err := Run(w2, agm.Config{}, rng.NewPublicCoins(8))
	if err != nil {
		t.Fatal(err)
	}
	r6, err := Run(w6, agm.Config{}, rng.NewPublicCoins(9))
	if err != nil {
		t.Fatal(err)
	}
	if r6.MaxSketchBits <= r2.MaxSketchBits {
		t.Errorf("bits should grow with W: W=2 %d, W=6 %d", r2.MaxSketchBits, r6.MaxSketchBits)
	}
	if r6.MaxSketchBits > 4*r2.MaxSketchBits {
		t.Errorf("bits grew superlinearly in W: %d vs %d", r2.MaxSketchBits, r6.MaxSketchBits)
	}
}

func BenchmarkEstimatorN40W4(b *testing.B) {
	src := rng.NewSource(1)
	g := gen.Gnp(40, 0.2, src)
	wg := RandomWeights(g, 4, src)
	coins := rng.NewPublicCoins(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(wg, agm.Config{}, coins); err != nil {
			b.Fatal(err)
		}
	}
}

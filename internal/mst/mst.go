// Package mst implements the AGM minimum-spanning-tree weight estimator
// [AGM, SODA'12] in the distributed sketching model — the first concrete
// result the paper's introduction credits to graph sketching ("minimum
// spanning trees and edge connectivity [1]").
//
// For integer edge weights in [1, W] on a connected graph, the
// Chazelle–Rubinfeld–Trevisan identity expresses the MST weight through
// component counts of thresholded subgraphs:
//
//	w(MST) = n − W + Σ_{i=1}^{W−1} cc(G_≤i),
//
// where G_≤i keeps the edges of weight ≤ i and cc counts its connected
// components. Every cc(G_≤i) is obtainable from one AGM spanning-forest
// sketch of G_≤i, so each vertex sends W−1 forest sketches and the
// referee sums the identity — no vertex ever sees more than its own
// incident weights.
package mst

import (
	"fmt"
	"sort"

	"repro/internal/agm"
	"repro/internal/bitio"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Weighted couples a graph with integer edge weights in [1, MaxW].
type Weighted struct {
	G    *graph.Graph
	W    map[graph.Edge]int
	MaxW int
}

// NewWeighted validates and wraps a weighted graph.
func NewWeighted(g *graph.Graph, w map[graph.Edge]int, maxW int) (*Weighted, error) {
	if maxW < 1 {
		return nil, fmt.Errorf("mst: MaxW must be >= 1, got %d", maxW)
	}
	if len(w) != g.M() {
		return nil, fmt.Errorf("mst: %d weights for %d edges", len(w), g.M())
	}
	for e, wt := range w {
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("mst: weight for non-edge %v", e)
		}
		if wt < 1 || wt > maxW {
			return nil, fmt.Errorf("mst: weight %d of %v outside [1, %d]", wt, e, maxW)
		}
	}
	return &Weighted{G: g, W: w, MaxW: maxW}, nil
}

// RandomWeights assigns uniform weights in [1, maxW].
func RandomWeights(g *graph.Graph, maxW int, src *rng.Source) *Weighted {
	w := make(map[graph.Edge]int, g.M())
	for _, e := range g.Edges() {
		w[e] = 1 + src.Intn(maxW)
	}
	return &Weighted{G: g, W: w, MaxW: maxW}
}

// ExactMSTWeight returns the minimum spanning forest weight by Kruskal's
// algorithm (the reference the sketched estimate is judged against).
func (wg *Weighted) ExactMSTWeight() int {
	edges := wg.G.Edges()
	sort.Slice(edges, func(i, j int) bool { return wg.W[edges[i]] < wg.W[edges[j]] })
	parent := make([]int, wg.G.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total := 0
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[rv] = ru
			total += wg.W[e]
		}
	}
	return total
}

// thresholded returns G_≤i.
func (wg *Weighted) thresholded(i int) *graph.Graph {
	b := graph.NewBuilder(wg.G.N())
	for _, e := range wg.G.Edges() {
		if wg.W[e] <= i {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// Result reports one estimator run.
type Result struct {
	// Estimate is the sketched MSF weight via the CRT identity
	// (generalized to disconnected graphs: spanning forest weight).
	Estimate int
	// Exact is the Kruskal reference.
	Exact int
	// MaxSketchBits is the worst-case per-vertex total across all
	// thresholds.
	MaxSketchBits int
}

// Exactly reports whether the estimate matched the reference.
func (r Result) Exactly() bool { return r.Estimate == r.Exact }

// Protocol is the one-round sketching estimator behind Run, expressed
// on the uniform Sketch/Decode contract so it runs on the execution
// engine and the wire like every other protocol. Vertex v's message is
// the concatenation, over thresholds i = 1..MaxW, of one AGM forest
// sketch of its G_≤i incidence (no padding between parts: the message
// length is exactly the sum of the per-threshold sketch lengths, which
// is what the model charges). The referee decodes threshold by
// threshold — each forest sketch has a deterministic length, so the
// concatenated messages parse unambiguously — and sums the generalized
// identity.
type Protocol struct {
	wg      *Weighted
	cfg     agm.Config
	forests []*agm.ForestProtocol
}

var _ core.Protocol[int] = (*Protocol)(nil)

// NewProtocol returns the estimator for one weighted graph. The weights
// parameterize the protocol (each vertex thresholds its own incident
// weights), so instances are bound to wg.
func NewProtocol(wg *Weighted, cfg agm.Config) *Protocol {
	forests := make([]*agm.ForestProtocol, wg.MaxW)
	for i := range forests {
		forests[i] = agm.NewSpanningForest(cfg)
	}
	return &Protocol{wg: wg, cfg: cfg, forests: forests}
}

// Name implements core.Protocol.
func (p *Protocol) Name() string { return "mst-weight" }

// Sketch implements core.Protocol: one forest sketch per threshold of
// the vertex's thresholded incidence, concatenated bit-exactly.
func (p *Protocol) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	for i := 1; i <= p.wg.MaxW; i++ {
		var nbrs []int
		for _, u := range view.Neighbors {
			if p.wg.W[graph.NewEdge(view.ID, u)] <= i {
				nbrs = append(nbrs, u)
			}
		}
		sub := core.VertexView{N: view.N, ID: view.ID, Neighbors: nbrs}
		sw, err := p.forests[i-1].Sketch(sub, coins.Derive("mst-threshold").DeriveIndex(i))
		if err != nil {
			return nil, fmt.Errorf("mst: threshold %d vertex %d: %w", i, view.ID, err)
		}
		w.Append(sw)
		bitio.Release(sw)
	}
	return w, nil
}

// Decode implements core.Protocol: recover cc(G_≤i) for every threshold
// from the concatenated forest sketches and sum the identity
// w(MSF) = n + Σ_{i<W} cc(G_≤i) − W·cc(G), valid for disconnected
// graphs too. A forest-decode failure overcounts that threshold's
// components, inflating the estimate when i < W and deflating it at
// i = W; the experiment reports |estimate − exact|.
func (p *Protocol) Decode(n int, sketches []*bitio.Reader, coins *rng.PublicCoins) (int, error) {
	ccTotal := 0
	var ccFull int
	for i := 1; i <= p.wg.MaxW; i++ {
		c := coins.Derive("mst-threshold").DeriveIndex(i)
		forest, err := p.forests[i-1].Decode(n, sketches, c)
		if err != nil {
			return 0, fmt.Errorf("mst: threshold %d decode: %w", i, err)
		}
		cc := n - len(forest)
		if i < p.wg.MaxW {
			ccTotal += cc
		} else {
			ccFull = cc
		}
	}
	return n + ccTotal - p.wg.MaxW*ccFull, nil
}

// Verify implements protocol.Sketcher: the estimate is audited against
// the Kruskal reference (the sketch is exact whenever every forest
// decode succeeds, which holds w.h.p. at the default parameters).
func (p *Protocol) Verify(_ *graph.Graph, out int) protocol.Outcome {
	return protocol.Outcome{Kind: "count", Size: out, Checked: true, Valid: out == p.wg.ExactMSTWeight()}
}

// Run executes the sketching estimator through the execution engine:
// every vertex emits its concatenated per-threshold forest sketches, the
// referee decodes component counts and sums the identity.
func Run(wg *Weighted, cfg agm.Config, coins *rng.PublicCoins) (Result, error) {
	var res Result
	res.Exact = wg.ExactMSTWeight()
	r, err := cclique.Run[int](&cclique.OneRound[int]{P: NewProtocol(wg, cfg)}, wg.G, coins)
	if err != nil {
		return res, err
	}
	res.Estimate = r.Output
	res.MaxSketchBits = r.MaxMessageBits
	return res, nil
}

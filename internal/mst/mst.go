// Package mst implements the AGM minimum-spanning-tree weight estimator
// [AGM, SODA'12] in the distributed sketching model — the first concrete
// result the paper's introduction credits to graph sketching ("minimum
// spanning trees and edge connectivity [1]").
//
// For integer edge weights in [1, W] on a connected graph, the
// Chazelle–Rubinfeld–Trevisan identity expresses the MST weight through
// component counts of thresholded subgraphs:
//
//	w(MST) = n − W + Σ_{i=1}^{W−1} cc(G_≤i),
//
// where G_≤i keeps the edges of weight ≤ i and cc counts its connected
// components. Every cc(G_≤i) is obtainable from one AGM spanning-forest
// sketch of G_≤i, so each vertex sends W−1 forest sketches and the
// referee sums the identity — no vertex ever sees more than its own
// incident weights.
package mst

import (
	"fmt"
	"sort"

	"repro/internal/agm"
	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Weighted couples a graph with integer edge weights in [1, MaxW].
type Weighted struct {
	G    *graph.Graph
	W    map[graph.Edge]int
	MaxW int
}

// NewWeighted validates and wraps a weighted graph.
func NewWeighted(g *graph.Graph, w map[graph.Edge]int, maxW int) (*Weighted, error) {
	if maxW < 1 {
		return nil, fmt.Errorf("mst: MaxW must be >= 1, got %d", maxW)
	}
	if len(w) != g.M() {
		return nil, fmt.Errorf("mst: %d weights for %d edges", len(w), g.M())
	}
	for e, wt := range w {
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("mst: weight for non-edge %v", e)
		}
		if wt < 1 || wt > maxW {
			return nil, fmt.Errorf("mst: weight %d of %v outside [1, %d]", wt, e, maxW)
		}
	}
	return &Weighted{G: g, W: w, MaxW: maxW}, nil
}

// RandomWeights assigns uniform weights in [1, maxW].
func RandomWeights(g *graph.Graph, maxW int, src *rng.Source) *Weighted {
	w := make(map[graph.Edge]int, g.M())
	for _, e := range g.Edges() {
		w[e] = 1 + src.Intn(maxW)
	}
	return &Weighted{G: g, W: w, MaxW: maxW}
}

// ExactMSTWeight returns the minimum spanning forest weight by Kruskal's
// algorithm (the reference the sketched estimate is judged against).
func (wg *Weighted) ExactMSTWeight() int {
	edges := wg.G.Edges()
	sort.Slice(edges, func(i, j int) bool { return wg.W[edges[i]] < wg.W[edges[j]] })
	parent := make([]int, wg.G.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total := 0
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[rv] = ru
			total += wg.W[e]
		}
	}
	return total
}

// thresholded returns G_≤i.
func (wg *Weighted) thresholded(i int) *graph.Graph {
	b := graph.NewBuilder(wg.G.N())
	for _, e := range wg.G.Edges() {
		if wg.W[e] <= i {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// Result reports one estimator run.
type Result struct {
	// Estimate is the sketched MSF weight via the CRT identity
	// (generalized to disconnected graphs: spanning forest weight).
	Estimate int
	// Exact is the Kruskal reference.
	Exact int
	// MaxSketchBits is the worst-case per-vertex total across all
	// thresholds.
	MaxSketchBits int
}

// Exactly reports whether the estimate matched the reference.
func (r Result) Exactly() bool { return r.Estimate == r.Exact }

// Run executes the sketching estimator: every vertex emits one AGM
// forest sketch per threshold of its thresholded incidence, the referee
// decodes component counts and sums the generalized identity
// w(MSF) = n + Σ_{i=1}^{W−1} cc(G_≤i) − W·cc(G), valid for disconnected
// graphs too. A forest-decode failure overcounts that threshold's
// components, inflating the estimate when i < W and deflating it at
// i = W; the experiment reports |estimate − exact|.
func Run(wg *Weighted, cfg agm.Config, coins *rng.PublicCoins) (Result, error) {
	var res Result
	res.Exact = wg.ExactMSTWeight()
	n := wg.G.N()

	perVertexBits := make([]int, n)
	ccTotal := 0
	var ccFull int
	for i := 1; i <= wg.MaxW; i++ {
		sub := wg.thresholded(i)
		p := agm.NewSpanningForest(cfg)
		c := coins.Derive("mst-threshold").DeriveIndex(i)

		views := core.Views(sub)
		readers := make([]*bitio.Reader, n)
		for v := 0; v < n; v++ {
			w, err := p.Sketch(views[v], c)
			if err != nil {
				return res, fmt.Errorf("mst: threshold %d vertex %d: %w", i, v, err)
			}
			perVertexBits[v] += w.Len()
			readers[v] = bitio.ReaderFor(w)
		}
		forest, err := p.Decode(n, readers, c)
		if err != nil {
			return res, fmt.Errorf("mst: threshold %d decode: %w", i, err)
		}
		cc := n - len(forest)
		if i < wg.MaxW {
			ccTotal += cc
		} else {
			ccFull = cc
		}
	}
	// Generalized identity: w(MSF) = n − ccFull − (W−1)·ccFull + Σ_{i<W} (cc_i)
	//                              = n + Σ_{i<W} cc_i − W·ccFull.
	res.Estimate = n + ccTotal - wg.MaxW*ccFull
	for v := 0; v < n; v++ {
		if perVertexBits[v] > res.MaxSketchBits {
			res.MaxSketchBits = perVertexBits[v]
		}
	}
	return res, nil
}

package mst

// Wire registration. A wire spec carries only a graph, so the registry
// binds the remaining estimator parameters to fixed, documented
// constants: weights are drawn from a fixed-seed source as a pure
// function of the graph (every executor derives the same weighted
// instance), and the forest configuration is sized for smoke-scale
// graphs. The golden fixture under internal/protocol/testdata pins the
// resulting transcripts.

import (
	"repro/internal/agm"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Registry constants: the weight distribution and sketch size the wire
// protocol "mst-weight" is pinned to.
const (
	registryMaxW       = 3
	registryWeightSeed = 91
)

func registryConfig() agm.Config { return agm.Config{Rounds: 6, Reps: 2} }

func init() {
	protocol.RegisterSketcher("mst-weight", func(g *graph.Graph) protocol.Sketcher[int] {
		wg := RandomWeights(g, registryMaxW, rng.NewSource(registryWeightSeed))
		return NewProtocol(wg, registryConfig())
	})
}

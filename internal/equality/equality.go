// Package equality implements the neighborhood-equality problem in the
// distributed sketching model, exhibiting the randomness hierarchy that
// Becker et al. [18] study and the paper's related-work section cites:
// with public coins the problem costs O(log n) bits, with private coins
// Θ(√n·polylog) (the Babai–Kimmel simultaneous-messages bound), and
// deterministically Θ(n).
//
// Problem: do vertices 0 and 1 have the same neighborhood outside each
// other? Formally, with s_v ∈ {0,1}^(n-2) the adjacency row of v
// restricted to [2, n), decide s_0 = s_1. Only players 0 and 1 speak.
package equality

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/rng"
)

// restrictedRow returns s_v for the speaking players, nil otherwise.
func restrictedRow(view core.VertexView) []bool {
	if view.ID > 1 {
		return nil
	}
	row := make([]bool, view.N-2)
	for _, u := range view.Neighbors {
		if u >= 2 {
			row[u-2] = true
		}
	}
	return row
}

// Deterministic sends the full restricted row: n-2 bits per speaking
// player, zero error. No sub-linear deterministic protocol exists
// (fooling-set argument), making this the baseline the randomized
// protocols beat.
type Deterministic struct{}

var _ core.Protocol[bool] = (*Deterministic)(nil)

// Name implements core.Protocol.
func (Deterministic) Name() string { return "equality-deterministic" }

// Sketch implements core.Protocol.
func (Deterministic) Sketch(view core.VertexView, _ *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	for _, b := range restrictedRow(view) {
		w.WriteBit(b)
	}
	return w, nil
}

// Decode implements core.Protocol.
func (Deterministic) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) (bool, error) {
	for i := 0; i < n-2; i++ {
		a, err := sketches[0].ReadBit()
		if err != nil {
			return false, err
		}
		b, err := sketches[1].ReadBit()
		if err != nil {
			return false, err
		}
		if a != b {
			return false, nil
		}
	}
	return true, nil
}

// PublicFingerprint evaluates the row's polynomial at a shared random
// field point: O(log n) bits, one-sided error ≤ (n-2)/p over the public
// coins.
type PublicFingerprint struct{}

var _ core.Protocol[bool] = (*PublicFingerprint)(nil)

// Name implements core.Protocol.
func (PublicFingerprint) Name() string { return "equality-public-coin" }

func fingerprintPoint(coins *rng.PublicCoins) field.Elem {
	z := field.Reduce(coins.Derive("equality-z").Source().Uint64())
	if z == 0 {
		z = 1
	}
	return z
}

// Sketch implements core.Protocol.
func (PublicFingerprint) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	if view.ID > 1 {
		return w, nil
	}
	z := fingerprintPoint(coins)
	var fp field.Elem
	// Horner-style running power: zpow tracks z^{i+1} across the scan,
	// one Mul per row bit instead of a full Pow per set bit.
	zpow := z
	for _, b := range restrictedRow(view) {
		if b {
			fp = field.Add(fp, zpow)
		}
		zpow = field.Mul(zpow, z)
	}
	w.WriteUint(uint64(fp), 61)
	return w, nil
}

// Decode implements core.Protocol.
func (PublicFingerprint) Decode(_ int, sketches []*bitio.Reader, _ *rng.PublicCoins) (bool, error) {
	a, err := sketches[0].ReadUint(61)
	if err != nil {
		return false, err
	}
	b, err := sketches[1].ReadUint(61)
	if err != nil {
		return false, err
	}
	return a == b, nil
}

// PrivateCode is the Babai–Kimmel style private-coin protocol: each
// speaking player Reed–Solomon-encodes its row and sends ~2√m randomly
// selected (position, symbol) pairs using coins the other player cannot
// see. Colliding positions let the referee compare symbols; the code's
// distance turns any inequality into a likely mismatch. Θ(√n·log n) bits
// — quadratically more than public coins, exponentially less than
// deterministic, matching the Θ(√n) private-coin SMP bound for equality.
type PrivateCode struct {
	// Rate is the inverse code rate (evaluation points per message
	// symbol); 0 selects 4.
	Rate int
	// Samples overrides the number of transmitted pairs; 0 selects
	// ceil(2√m).
	Samples int
	// privateSeed simulates private randomness: it is mixed into each
	// player's sampling coins and is unknown to the referee's decode
	// path. Zero value is fine (tests vary it to show independence).
	PrivateSeed uint64
}

var _ core.Protocol[bool] = (*PrivateCode)(nil)

// Name implements core.Protocol.
func (*PrivateCode) Name() string { return "equality-private-coin" }

// rsParams derives the code dimensions for message length n-2 bits.
func rsParams(n, rate int) (symbols, points int) {
	if rate == 0 {
		rate = 4
	}
	symbols = (n - 2 + 59) / 60 // 60 bits per field symbol
	if symbols < 1 {
		symbols = 1
	}
	return symbols, rate * symbols
}

// encode packs the row into field symbols and evaluates its polynomial
// at the first `points` field elements.
func encode(row []bool, symbols, points int) []field.Elem {
	coeffs := make([]field.Elem, symbols)
	for i, b := range row {
		if b {
			coeffs[i/60] = field.Add(coeffs[i/60], field.Elem(uint64(1)<<uint(i%60)))
		}
	}
	out := make([]field.Elem, points)
	for x := 0; x < points; x++ {
		out[x] = field.EvalPoly(coeffs, field.Elem(uint64(x)))
	}
	return out
}

func (p *PrivateCode) samples(points int) int {
	if p.Samples > 0 {
		return p.Samples
	}
	s := 1
	for s*s < 4*points {
		s++
	}
	return s
}

// Sketch implements core.Protocol.
func (p *PrivateCode) Sketch(view core.VertexView, coins *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	if view.ID > 1 {
		return w, nil
	}
	symbols, points := rsParams(view.N, p.Rate)
	code := encode(restrictedRow(view), symbols, points)
	// Private coins: the referee never derives this stream; the two
	// players' streams are independent.
	src := rng.NewSource(coins.Derive("equality-private").DeriveIndex(view.ID).Seed() ^
		p.PrivateSeed ^ 0x6a09e667f3bcc908)
	q := p.samples(points)
	posWidth := bitio.UintWidth(points)
	w.WriteUvarint(uint64(q))
	for i := 0; i < q; i++ {
		pos := src.Intn(points)
		w.WriteUint(uint64(pos), posWidth)
		w.WriteUint(uint64(code[pos]), 61)
	}
	return w, nil
}

// Decode implements core.Protocol: compare symbols on colliding
// positions; with no collision, answer "equal" (the measured error
// source).
func (p *PrivateCode) Decode(n int, sketches []*bitio.Reader, _ *rng.PublicCoins) (bool, error) {
	_, points := rsParams(n, p.Rate)
	posWidth := bitio.UintWidth(points)
	readPairs := func(r *bitio.Reader) (map[int]uint64, error) {
		q, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		out := make(map[int]uint64, q)
		for i := uint64(0); i < q; i++ {
			pos, err := r.ReadUint(posWidth)
			if err != nil {
				return nil, err
			}
			sym, err := r.ReadUint(61)
			if err != nil {
				return nil, err
			}
			out[int(pos)] = sym
		}
		return out, nil
	}
	a, err := readPairs(sketches[0])
	if err != nil {
		return false, fmt.Errorf("equality: player 0: %w", err)
	}
	b, err := readPairs(sketches[1])
	if err != nil {
		return false, fmt.Errorf("equality: player 1: %w", err)
	}
	for pos, sa := range a {
		if sb, ok := b[pos]; ok && sa != sb {
			return false, nil
		}
	}
	return true, nil
}

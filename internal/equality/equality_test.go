package equality

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// twinGraph returns a graph where vertices 0 and 1 have identical
// restricted neighborhoods.
func twinGraph(n int, src *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 2; u < n; u++ {
		if src.Float64() < 0.3 {
			b.AddEdge(0, u)
			b.AddEdge(1, u)
		}
		for v := u + 1; v < n; v++ {
			if src.Float64() < 0.1 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// differGraph returns a graph where the restricted neighborhoods differ
// in exactly `diffs` positions.
func differGraph(n, diffs int, src *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	perm := src.Perm(n - 2)
	for u := 2; u < n; u++ {
		if src.Float64() < 0.3 {
			b.AddEdge(0, u)
			b.AddEdge(1, u)
		}
	}
	g := b.Build()
	// Flip `diffs` positions on vertex 1's side.
	b2 := graph.NewBuilder(n)
	for _, e := range g.Edges() {
		b2.AddEdge(e.U, e.V)
	}
	flipped := 0
	for _, idx := range perm {
		if flipped == diffs {
			break
		}
		u := idx + 2
		if !g.HasEdge(1, u) {
			b2.AddEdge(1, u)
			flipped++
		}
	}
	if flipped < diffs {
		panic("differGraph: not enough free slots")
	}
	return b2.Build()
}

func runEq(t *testing.T, p core.Protocol[bool], g *graph.Graph, coins *rng.PublicCoins) (bool, int) {
	t.Helper()
	res, err := core.Run(p, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	return res.Output, res.MaxSketchBits
}

func TestDeterministicExact(t *testing.T) {
	src := rng.NewSource(1)
	coins := rng.NewPublicCoins(2)
	for trial := 0; trial < 10; trial++ {
		eq := twinGraph(40, src)
		if got, bits := runEq(t, Deterministic{}, eq, coins); !got || bits != 38 {
			t.Errorf("equal pair: got %v at %d bits (want true at n-2)", got, bits)
		}
		neq := differGraph(40, 1, src)
		if got, _ := runEq(t, Deterministic{}, neq, coins); got {
			t.Error("unequal pair accepted by deterministic protocol")
		}
	}
}

func TestPublicFingerprint(t *testing.T) {
	src := rng.NewSource(3)
	for trial := 0; trial < 25; trial++ {
		coins := rng.NewPublicCoins(uint64(trial) + 100)
		eq := twinGraph(60, src)
		if got, bits := runEq(t, PublicFingerprint{}, eq, coins); !got {
			t.Error("equal pair rejected (fingerprints of equal strings must match)")
		} else if bits != 61 {
			t.Errorf("fingerprint is %d bits, want 61", bits)
		}
		neq := differGraph(60, 1+src.Intn(3), src)
		if got, _ := runEq(t, PublicFingerprint{}, neq, coins); got {
			t.Errorf("trial %d: unequal pair accepted — fingerprint collision should be ~2^-60", trial)
		}
	}
}

func TestPrivateCodeEqualAlwaysAccepts(t *testing.T) {
	src := rng.NewSource(5)
	p := &PrivateCode{}
	for trial := 0; trial < 10; trial++ {
		g := twinGraph(80, src)
		if got, _ := runEq(t, p, g, rng.NewPublicCoins(uint64(trial))); !got {
			t.Error("equal pair rejected — identical codes cannot mismatch")
		}
	}
}

func TestPrivateCodeDetectsDifferences(t *testing.T) {
	src := rng.NewSource(7)
	p := &PrivateCode{}
	detected := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		g := differGraph(80, 1, src)
		got, _ := runEq(t, p, g, rng.NewPublicCoins(uint64(trial)+500))
		if !got {
			detected++
		}
	}
	// Collisions ~4 expected, each detecting w.p. >= 3/4 (code distance):
	// overall detection should be strong but not perfect.
	if detected < trials*6/10 {
		t.Errorf("detected %d/%d unequal pairs", detected, trials)
	}
}

func TestPrivateCodeUsesPrivateRandomness(t *testing.T) {
	// Different private seeds must change the sampled positions (players
	// don't share them), while equal-pair correctness is unaffected.
	src := rng.NewSource(9)
	g := twinGraph(60, src)
	coins := rng.NewPublicCoins(11)
	views := core.Views(g)
	view := views[0]
	a, err := (&PrivateCode{PrivateSeed: 1}).Sketch(view, coins)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&PrivateCode{PrivateSeed: 2}).Sketch(view, coins)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == b.Len() {
		same := true
		ab, bb := a.Bytes(), b.Bytes()
		for i := range ab {
			if ab[i] != bb[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("private seed does not affect the sketch")
		}
	}
}

func TestCostHierarchy(t *testing.T) {
	// The separation: deterministic n-2 bits > private-coin Θ(√n log n)
	// > public-coin O(log n). The private-coin constant (~36√n bits) puts
	// the clear crossover around n ≈ 2^13; build a large twin pair with no
	// background edges to keep the instance light.
	src := rng.NewSource(13)
	n := 1 << 14
	b := graph.NewBuilder(n)
	for u := 2; u < n; u++ {
		if src.Float64() < 0.3 {
			b.AddEdge(0, u)
			b.AddEdge(1, u)
		}
	}
	g := b.Build()
	coins := rng.NewPublicCoins(17)

	_, detBits := runEq(t, Deterministic{}, g, coins)
	_, pubBits := runEq(t, PublicFingerprint{}, g, coins)
	_, privBits := runEq(t, &PrivateCode{}, g, coins)

	if !(pubBits < privBits && privBits < detBits) {
		t.Errorf("hierarchy violated: public=%d private=%d deterministic=%d",
			pubBits, privBits, detBits)
	}
	if privBits >= detBits/2 {
		t.Errorf("private-coin cost %d not well below deterministic %d", privBits, detBits)
	}
}

func TestNonSpeakingPlayersSilent(t *testing.T) {
	g := twinGraph(30, rng.NewSource(15))
	coins := rng.NewPublicCoins(16)
	for _, p := range []core.Protocol[bool]{Deterministic{}, PublicFingerprint{}, &PrivateCode{}} {
		views := core.Views(g)
		view := views[7]
		w, err := p.Sketch(view, coins)
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != 0 {
			t.Errorf("%s: player 7 sent %d bits, want 0", p.Name(), w.Len())
		}
	}
}

func TestEncodeDistance(t *testing.T) {
	// Two distinct rows must yield codewords differing in most positions
	// (degree < symbols, so agreement <= symbols-1 points).
	row1 := make([]bool, 120)
	row2 := make([]bool, 120)
	row2[59] = true
	symbols, points := rsParams(122, 4)
	c1 := encode(row1, symbols, points)
	c2 := encode(row2, symbols, points)
	agree := 0
	for i := range c1 {
		if c1[i] == c2[i] {
			agree++
		}
	}
	if agree >= symbols {
		t.Errorf("codewords agree on %d of %d points, want < %d (degree bound)",
			agree, points, symbols)
	}
}

package equality

import (
	"repro/internal/graph"
	"repro/internal/protocol"
)

func init() {
	protocol.RegisterSketcher("equality-public-coin",
		func(g *graph.Graph) protocol.Sketcher[bool] { return PublicFingerprint{} })
}

// NeighborhoodsEqual is the problem's ground truth: whether vertices 0
// and 1 have identical neighborhoods restricted to [2, n).
func NeighborhoodsEqual(g *graph.Graph) bool {
	for u := 2; u < g.N(); u++ {
		if g.HasEdge(0, u) != g.HasEdge(1, u) {
			return false
		}
	}
	return true
}

// Verify implements protocol.Sketcher. The outcome is a yes/no decision;
// Valid compares it to the actual neighborhood equality (false on the
// protocol's one-sided fingerprint-collision error).
func (PublicFingerprint) Verify(g *graph.Graph, out bool) protocol.Outcome {
	o := protocol.Outcome{Kind: "decision", Checked: true}
	if out {
		o.Size = 1
	}
	o.Valid = out == NeighborhoodsEqual(g)
	return o
}

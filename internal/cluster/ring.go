// Package cluster scales the referee service past one node: a
// coordinator consistent-hash-shards incoming specs across N refereed
// backends, health-checks them, and fails over on backend death.
//
// The shape mirrors the source paper's shared-blackboard model — many
// players, one referee tier — and the determinism contract is what
// makes the cluster trivial to operate: any backend serves any spec
// with a byte-identical result, so placement is purely a cache- and
// load-locality decision, and failover needs no state transfer at all.
// Consistent hashing is used for exactly that locality: a spec's
// content address (wire.SpecCacheKey) always lands on the same
// backend, so each backend's result cache concentrates on its shard of
// the spec space, and when membership changes only the departed
// node's share of keys moves.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultReplicas is the default number of virtual nodes per backend.
// At 64 vnodes the max/mean load imbalance across a handful of
// backends stays within a few tens of percent — fine for a cache tier
// where misplacement costs a duplicate cache entry, not correctness.
const DefaultReplicas = 64

// point is one virtual node on the ring.
type point struct {
	hash    uint64
	backend int // index into Ring.backends
}

// Ring is an immutable consistent-hash ring over a set of backends.
// Build a new Ring when membership changes; lookups are lock-free.
type Ring struct {
	backends []string
	points   []point // sorted by hash
}

// hash64 maps bytes to a ring position. SHA-256 (truncated) rather
// than a fast non-cryptographic hash: ring placement happens once per
// membership change and once per request key, and the flat SHA output
// distribution is what the balance argument leans on.
func hash64(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with the given backends, each appearing
// replicas times as virtual nodes (replicas <= 0 selects
// DefaultReplicas). Backend order does not matter: vnode positions
// depend only on the backend name, so two coordinators configured with
// the same set in any order agree on every placement.
func NewRing(backends []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		backends: append([]string(nil), backends...),
		points:   make([]point, 0, len(backends)*replicas),
	}
	var buf [8]byte
	for bi, b := range r.backends {
		for v := 0; v < replicas; v++ {
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			r.points = append(r.points, point{hash: hash64(append([]byte(b+"#"), buf[:]...)), backend: bi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so equal-hash vnodes still order
		// deterministically regardless of input order.
		return r.backends[r.points[i].backend] < r.backends[r.points[j].backend]
	})
	return r
}

// Backends returns the ring's member names (in construction order).
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Owner returns the backend owning key: the first vnode clockwise from
// the key's hash. Empty ring returns "".
func (r *Ring) Owner(key []byte) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns the failover order for key: the owner, then each
// distinct backend in clockwise vnode order. Every backend appears
// exactly once, so walking the sequence until a live backend answers
// visits the whole cluster in a key-deterministic order — and because
// successor sets are what consistent hashing keeps stable, a dead
// backend's keys spread over its ring successors instead of all
// piling onto one node.
func (r *Ring) Sequence(key []byte) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, len(r.backends))
	seen := make(map[int]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(seq) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			seq = append(seq, r.backends[p.backend])
		}
	}
	return seq
}

package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("spec-key-%04d", i))
	}
	return keys
}

// TestRingOrderIndependence: two coordinators configured with the same
// backends in different order must agree on every placement.
func TestRingOrderIndependence(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 0)
	b := NewRing([]string{"n3:1", "n1:1", "n2:1"}, 0)
	for _, key := range testKeys(256) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q depends on configuration order", key)
		}
		sa, sb := a.Sequence(key), b.Sequence(key)
		if fmt.Sprint(sa) != fmt.Sprint(sb) {
			t.Fatalf("sequence of %q depends on configuration order: %v vs %v", key, sa, sb)
		}
	}
}

// TestRingConsistency is the defining property of consistent hashing:
// removing one backend remaps only that backend's keys; every key
// owned by a survivor keeps its owner.
func TestRingConsistency(t *testing.T) {
	full := NewRing([]string{"n1:1", "n2:1", "n3:1", "n4:1"}, 0)
	without := NewRing([]string{"n1:1", "n2:1", "n4:1"}, 0) // n3 died
	moved := 0
	for _, key := range testKeys(1024) {
		before := full.Owner(key)
		after := without.Owner(key)
		if before != "n3:1" {
			if after != before {
				t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
			}
			continue
		}
		moved++
		// An orphaned key must land on its failover successor — the
		// same backend Sequence already named next.
		if want := full.Sequence(key)[1]; after != want {
			t.Fatalf("orphaned key %q landed on %s, want ring successor %s", key, after, want)
		}
	}
	if moved == 0 {
		t.Fatal("n3 owned no keys out of 1024; ring is degenerate")
	}
}

// TestRingBalance: with the default vnode count no backend's share may
// be wildly off the mean (the coordinator's placement is a locality
// optimization, but a degenerate ring would still serialize the
// cluster).
func TestRingBalance(t *testing.T) {
	backends := []string{"n1:1", "n2:1", "n3:1"}
	r := NewRing(backends, 0)
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	mean := float64(len(keys)) / float64(len(backends))
	for _, b := range backends {
		share := float64(counts[b])
		if share < mean/2 || share > mean*2 {
			t.Fatalf("backend %s owns %d of %d keys (mean %.0f); imbalance beyond 2x", b, counts[b], len(keys), mean)
		}
	}
}

// TestRingSequenceCoversAll: the failover order visits every backend
// exactly once.
func TestRingSequenceCoversAll(t *testing.T) {
	backends := []string{"n1:1", "n2:1", "n3:1", "n4:1", "n5:1"}
	r := NewRing(backends, 8)
	for _, key := range testKeys(64) {
		seq := r.Sequence(key)
		if len(seq) != len(backends) {
			t.Fatalf("sequence %v misses backends", seq)
		}
		seen := map[string]bool{}
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("sequence %v repeats %s", seq, b)
			}
			seen[b] = true
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner([]byte("x")); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
	if seq := r.Sequence([]byte("x")); seq != nil {
		t.Fatalf("empty ring sequence %v", seq)
	}
}

package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testBackend is one refereed daemon on a real loopback listener,
// killable (and restartable on the same address) mid-test.
type testBackend struct {
	addr string
	stop context.CancelFunc
	done chan error
	once sync.Once
}

// startBackendAt boots a refereed daemon on addr ("" for an ephemeral
// port) with a 1ms shutdown grace, so kill() approximates a crash:
// the listener closes immediately and in-flight requests are cut off.
func startBackendAt(t *testing.T, addr string, cfg server.Config) *testBackend {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logger = quietLogger()
	ctx, cancel := context.WithCancel(context.Background())
	b := &testBackend{addr: ln.Addr().String(), stop: cancel, done: make(chan error, 1)}
	s := server.New(cfg)
	go func() { b.done <- s.Serve(ctx, ln, time.Millisecond) }()
	t.Cleanup(func() { b.kill() })
	return b
}

// kill stops the backend and waits for its listener to be gone.
// Idempotent, so tests can kill explicitly and Cleanup can kill again.
func (b *testBackend) kill() {
	b.once.Do(func() {
		b.stop()
		select {
		case <-b.done:
		case <-time.After(10 * time.Second):
		}
	})
}

// startCluster boots n caching backends plus a coordinator over them.
func startCluster(t *testing.T, n int) ([]*testBackend, *cluster.Coordinator) {
	t.Helper()
	backends := make([]*testBackend, n)
	addrs := make([]string, n)
	for i := range backends {
		backends[i] = startBackendAt(t, "", server.Config{CacheBytes: 1 << 20})
		addrs[i] = backends[i].addr
	}
	co, err := cluster.New(cluster.Config{
		Backends:     addrs,
		ProbeTimeout: time.Second,
		Backoff:      10 * time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return backends, co
}

// localDigests executes every smoke spec in-process — the single-node
// reference the cluster must match byte for byte.
func localDigests(t *testing.T) ([]wire.RunSpec, []*wire.RunReport) {
	t.Helper()
	specs := wire.SmokeSpecs(1)
	reports := make([]*wire.RunReport, len(specs))
	for i, spec := range specs {
		r, err := wire.ExecuteSpec(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = r
	}
	return specs, reports
}

// TestCoordinatorParityAllSpecs routes all 16 smoke specs through a
// 3-backend cluster over real HTTP (the coordinator is hit through its
// own /v1 surface, exactly as loadgen and sketchlab -remote would) and
// checks every report is digest-identical to single-node local
// execution; a second pass must then be served from the backend caches.
func TestCoordinatorParityAllSpecs(t *testing.T) {
	_, co := startCluster(t, 3)
	front := httptest.NewServer(co)
	t.Cleanup(front.Close)
	c := client.New(client.Config{BaseURL: front.URL})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("coordinator healthz: %v", err)
	}
	specs, local := localDigests(t)
	for pass := 0; pass < 2; pass++ {
		for i, spec := range specs {
			report, err := c.Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, spec.Label, err)
			}
			if report.Digest() != local[i].Digest() {
				t.Fatalf("pass %d %s: digest drifted", pass, spec.Label)
			}
		}
	}
	// Batch through the cluster too: stats and outcomes must match.
	items, err := c.RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if items[i].Err != "" {
			t.Fatalf("batch item %s: %s", specs[i].Label, items[i].Err)
		}
		if items[i].Stats.TotalBits != local[i].Stats.TotalBits || items[i].Outcome != local[i].Outcome {
			t.Fatalf("batch item %s drifted", specs[i].Label)
		}
	}
	st := co.Stats(context.Background())
	if !st.Cache.Enabled || st.Cache.Hits == 0 {
		t.Fatalf("aggregated cache stats %+v, want hits from the second pass", st.Cache)
	}
	if st.Failovers != 0 {
		t.Fatalf("%d failovers in a healthy cluster", st.Failovers)
	}
	var spread int
	for _, b := range st.Backends {
		if b.Dispatched > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("only %d of 3 backends served traffic; ring is not spreading", spread)
	}
}

// TestCoordinatorFailoverMidSweep is the chaos sweep: a seed-derived
// schedule picks when to kill and when to restart; the victim is the
// owner of the next spec, so failover is exercised deterministically.
// Every report — before, during, and after the crash — must stay
// digest-identical to the single-node run.
func TestCoordinatorFailoverMidSweep(t *testing.T) {
	backends, co := startCluster(t, 3)
	specs, local := localDigests(t)

	// Seed-derived chaos schedule, faults-style: the kill point moves
	// with the seed but the assertion never weakens.
	chaos := rng.NewSource(1177)
	killAt := 2 + chaos.Intn(4)             // kill before this spec's dispatch
	restartAt := killAt + 3 + chaos.Intn(3) // restart before this one's

	byAddr := make(map[string]*testBackend, len(backends))
	addrs := make([]string, len(backends))
	for i, b := range backends {
		byAddr[b.addr] = b
		addrs[i] = b.addr
	}
	ring := cluster.NewRing(addrs, 0)
	victimAddr := ring.Owner([]byte(wire.SpecCacheKey(specs[killAt])))

	for i, spec := range specs {
		if i == killAt {
			byAddr[victimAddr].kill()
		}
		if i == restartAt {
			byAddr[victimAddr] = startBackendAt(t, victimAddr, server.Config{CacheBytes: 1 << 20})
			co.CheckBackends(context.Background())
		}
		report, err := co.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("spec %d (%s) with %s dead: %v", i, spec.Label, victimAddr, err)
		}
		if report.Digest() != local[i].Digest() {
			t.Fatalf("spec %d (%s): digest drifted during failover", i, spec.Label)
		}
	}
	st := co.Stats(context.Background())
	if st.Failovers == 0 {
		t.Fatal("victim owned the next spec; the sweep must have failed over")
	}
	for _, b := range st.Backends {
		if b.Addr == victimAddr && !b.Alive {
			t.Fatalf("victim %s not revived after restart + health check", victimAddr)
		}
	}
}

// TestCoordinatorBatchFailover kills a backend without telling the
// coordinator, then dispatches the full smoke batch: the dead owner's
// sub-batch fails mid-batch and must redistribute across survivors,
// completing every item identically to local execution. Run under
// -race in make test-race.
func TestCoordinatorBatchFailover(t *testing.T) {
	backends, co := startCluster(t, 3)
	specs, local := localDigests(t)
	// Silent crash: the coordinator still believes all three are up.
	backends[1].kill()
	items := co.RunBatch(context.Background(), specs)
	for i := range items {
		if items[i].Err != "" {
			t.Fatalf("item %s: %s", specs[i].Label, items[i].Err)
		}
		if items[i].Stats.TotalBits != local[i].Stats.TotalBits || items[i].Outcome != local[i].Outcome {
			t.Fatalf("item %s drifted after mid-batch failover", specs[i].Label)
		}
	}
	st := co.Stats(context.Background())
	var deadSeen bool
	for _, b := range st.Backends {
		if b.Addr == backends[1].addr {
			deadSeen = true
			if b.Alive {
				t.Fatal("crashed backend still marked alive after the batch")
			}
		}
	}
	if !deadSeen {
		t.Fatal("crashed backend missing from stats")
	}
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded though a backend was dead")
	}
}

// TestCoordinatorKillDuringInflightBatch kills the owner of a
// deliberately slow spec while its sub-batch is in flight (1ms server
// grace cuts the request off mid-execution); the items must
// redistribute and complete.
func TestCoordinatorKillDuringInflightBatch(t *testing.T) {
	backends, co := startCluster(t, 3)
	addrs := make([]string, len(backends))
	byAddr := make(map[string]*testBackend, len(backends))
	for i, b := range backends {
		addrs[i] = b.addr
		byAddr[b.addr] = b
	}
	slow := wire.SmokeSpecs(1)[0]
	slow.Label = "slow-straggler"
	slow.Workers = 1
	slow.Faults = wire.FaultSpec{Straggle: 1, DelayNS: int64(5 * time.Millisecond), Seed: 7}
	specs := append(wire.SmokeSpecs(1)[:4], slow)
	owner := cluster.NewRing(addrs, 0).Owner([]byte(wire.SpecCacheKey(slow)))

	want := make([]*wire.RunReport, len(specs))
	for i, spec := range specs {
		r, err := wire.ExecuteSpec(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	go func() {
		time.Sleep(100 * time.Millisecond) // let the sub-batches get in flight
		byAddr[owner].kill()
	}()
	items := co.RunBatch(context.Background(), specs)
	for i := range items {
		if items[i].Err != "" {
			t.Fatalf("item %s: %s", specs[i].Label, items[i].Err)
		}
		if items[i].Stats.TotalBits != want[i].Stats.TotalBits {
			t.Fatalf("item %s drifted", specs[i].Label)
		}
	}
}

// TestCoordinatorDeterministicErrorNotFailedOver: a spec the registry
// rejects fails identically everywhere, so the coordinator must return
// the backend's 400 as-is without burning the ring.
func TestCoordinatorDeterministicErrorNotFailedOver(t *testing.T) {
	_, co := startCluster(t, 3)
	bogus := wire.RunSpec{Label: "bogus", Protocol: "no-such-protocol",
		Graph: wire.GraphSpec{Kind: "gnp", N: 4, P: 0.5}}
	_, err := co.Run(context.Background(), bogus)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("error %v, want the backend's 400 passed through", err)
	}
	st := co.Stats(context.Background())
	if st.Failovers != 0 {
		t.Fatalf("%d failovers on a deterministic failure", st.Failovers)
	}
	for _, b := range st.Backends {
		if !b.Alive {
			t.Fatalf("backend %s marked down by a deterministic failure", b.Addr)
		}
	}
}

// TestCoordinatorAllBackendsDead: with the whole cluster gone, run
// dispatch fails with a 502-shaped error and healthz turns degraded.
func TestCoordinatorAllBackendsDead(t *testing.T) {
	backends, co := startCluster(t, 2)
	for _, b := range backends {
		b.kill()
	}
	co.CheckBackends(context.Background())
	_, err := co.Run(context.Background(), wire.SmokeSpecs(1)[0])
	if err == nil || !strings.Contains(err.Error(), "no live backend") {
		t.Fatalf("error %v, want no-live-backend", err)
	}
	front := httptest.NewServer(co)
	t.Cleanup(front.Close)
	resp, err := http.Get(front.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503 when no backend is live", resp.StatusCode)
	}
	var h struct {
		Status   string `json:"status"`
		Role     string `json:"role"`
		Backends []struct {
			Alive bool `json:"alive"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Role != "coordinator" || len(h.Backends) != 2 {
		t.Fatalf("healthz body %+v", h)
	}
}

// TestCoordinatorRejectsEmptyConfig documents the constructor contract.
func TestCoordinatorRejectsEmptyConfig(t *testing.T) {
	if _, err := cluster.New(cluster.Config{}); err == nil {
		t.Fatal("no backends must be a configuration error")
	}
	if _, err := cluster.New(cluster.Config{Backends: []string{"a:1", "a:1"}}); err == nil {
		t.Fatal("duplicate backends must be a configuration error")
	}
}

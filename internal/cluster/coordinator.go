package cluster

// The coordinator is the cluster's front door: an http.Handler serving
// the same /v1 surface as a single refereed daemon (internal/server),
// so every existing client — internal/client, sketchlab -remote,
// cmd/loadgen — can point at a coordinator without knowing it is one.
//
// Placement: each spec's content address (wire.SpecCacheKey) hashes
// onto the ring; the owning backend executes it. Identical specs
// always land on the same backend, which concentrates each backend's
// result cache on its shard of the spec space.
//
// Failover: the determinism contract makes every backend perfectly
// substitutable — a spec yields byte-identical results anywhere — so
// when the owner fails the coordinator simply walks the key's ring
// sequence to the next live backend and marks the failed one down
// until a health probe revives it. Deterministic failures (a 400 for
// a bad spec, a 500 for a protocol failing mid-run) are NOT failed
// over: every backend would answer identically, so the first answer
// is the answer.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// Config carries the coordinator's knobs.
type Config struct {
	// Backends are the refereed daemon addresses (host:port, or full
	// http:// base URLs). Required, at least one.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring.
	// 0 means DefaultReplicas.
	Replicas int
	// HealthInterval is the period of the background health probe
	// loop run by Serve. 0 means 2s.
	HealthInterval time.Duration
	// ProbeTimeout bounds one health or stats probe. 0 means 2s.
	ProbeTimeout time.Duration
	// Retries is the per-backend client retry budget per dispatch.
	// Small on purpose — the cluster-level answer to a struggling
	// backend is failover, not patience. 0 means 1; negative disables.
	Retries int
	// Backoff is the per-backend client's initial retry delay. 0 means
	// 50ms.
	Backoff time.Duration
	// Timeout bounds one dispatched request end to end. 0 means two
	// minutes (a batch may carry many specs).
	Timeout time.Duration
	// Logger receives dispatch and membership records. nil means
	// slog.Default().
	Logger *slog.Logger
}

// backend is one refereed daemon plus its dispatch bookkeeping.
type backend struct {
	addr       string
	c          *client.Client
	alive      atomic.Bool
	dispatched atomic.Int64 // specs answered (run = 1, batch = len)
	failures   atomic.Int64 // dispatch failures that triggered failover
}

// Coordinator shards specs across refereed backends. It is an
// http.Handler; use Serve for a managed listener with a background
// health loop.
type Coordinator struct {
	cfg      Config
	log      *slog.Logger
	ring     *Ring
	backends map[string]*backend
	mux      *http.ServeMux
	started  time.Time

	runs       atomic.Int64
	batchSpecs atomic.Int64
	failovers  atomic.Int64
}

// baseURL normalizes a backend address to a client base URL.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// New builds a Coordinator. Backends start presumed alive — the first
// failed dispatch or health probe corrects the optimism.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	co := &Coordinator{
		cfg:      cfg,
		log:      cfg.Logger,
		ring:     NewRing(cfg.Backends, cfg.Replicas),
		backends: make(map[string]*backend, len(cfg.Backends)),
		mux:      http.NewServeMux(),
		started:  time.Now(),
	}
	for _, addr := range cfg.Backends {
		if _, dup := co.backends[addr]; dup {
			return nil, fmt.Errorf("cluster: backend %s configured twice", addr)
		}
		b := &backend{
			addr: addr,
			c: client.New(client.Config{
				BaseURL: baseURL(addr),
				Retries: cfg.Retries,
				Backoff: cfg.Backoff,
			}),
		}
		b.alive.Store(true)
		co.backends[addr] = b
	}
	co.mux.HandleFunc("POST /v1/run", co.handleRun)
	co.mux.HandleFunc("POST /v1/batch", co.handleBatch)
	co.mux.HandleFunc("GET /v1/healthz", co.handleHealthz)
	co.mux.HandleFunc("GET /v1/stats", co.handleStats)
	return co, nil
}

// markDown flips a backend to dead (idempotently) and logs the
// transition.
func (co *Coordinator) markDown(b *backend, cause error) {
	b.failures.Add(1)
	if b.alive.CompareAndSwap(true, false) {
		co.log.Warn("backend down", slog.String("backend", b.addr), slog.Any("cause", cause))
	}
}

// markUp flips a backend to alive (idempotently) and logs the
// transition.
func (co *Coordinator) markUp(b *backend) {
	if b.alive.CompareAndSwap(false, true) {
		co.log.Info("backend up", slog.String("backend", b.addr))
	}
}

// CheckBackends probes every backend's /v1/healthz once, concurrently,
// and updates aliveness. A backend that answers with a mismatched wire
// version is treated as down — routing to it could only produce frame
// errors.
func (co *Coordinator) CheckBackends(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range co.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, co.cfg.ProbeTimeout)
			defer cancel()
			if _, err := b.c.Health(pctx); err != nil {
				co.markDown(b, err)
			} else {
				co.markUp(b)
			}
		}(b)
	}
	wg.Wait()
}

// sequenceFor returns the failover order of a spec.
func (co *Coordinator) sequenceFor(spec wire.RunSpec) []*backend {
	seq := co.ring.Sequence([]byte(wire.SpecCacheKey(spec)))
	out := make([]*backend, len(seq))
	for i, addr := range seq {
		out[i] = co.backends[addr]
	}
	return out
}

// firstAlive returns the first live backend in a spec's sequence, or
// nil when the whole cluster is marked down.
func (co *Coordinator) firstAlive(spec wire.RunSpec) *backend {
	for _, b := range co.sequenceFor(spec) {
		if b.alive.Load() {
			return b
		}
	}
	return nil
}

// errAllBackendsDown is returned when a dispatch exhausted the ring.
var errAllBackendsDown = errors.New("cluster: no live backend")

// Run dispatches one spec to its owning backend, failing over along
// the key's ring sequence. Two passes: live backends first, then — if
// the whole sequence is marked down — the dead ones too, since a
// backend may have recovered between health probes.
func (co *Coordinator) Run(ctx context.Context, spec wire.RunSpec) (*wire.RunReport, error) {
	co.runs.Add(1)
	seq := co.sequenceFor(spec)
	// Snapshot aliveness once and try every backend at most once:
	// live ones in ring order first, then — since health info may be
	// stale — the dead-marked ones as a last resort.
	alive := make(map[*backend]bool, len(seq))
	for _, b := range seq {
		alive[b] = b.alive.Load()
	}
	order := make([]*backend, 0, len(seq))
	for _, b := range seq {
		if alive[b] {
			order = append(order, b)
		}
	}
	for _, b := range seq {
		if !alive[b] {
			order = append(order, b)
		}
	}
	var lastErr error
	for attempt, b := range order {
		if attempt > 0 {
			co.failovers.Add(1)
		}
		report, err := b.c.Run(ctx, spec)
		if err == nil {
			b.dispatched.Add(1)
			co.markUp(b)
			return report, nil
		}
		lastErr = err
		var se *client.StatusError
		if errors.As(err, &se) && !client.Retryable(se.Code) {
			// Deterministic failure: every backend answers the same.
			return nil, err
		}
		co.markDown(b, err)
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	if lastErr == nil {
		lastErr = errAllBackendsDown
	}
	return nil, fmt.Errorf("%w (last: %v)", errAllBackendsDown, lastErr)
}

// RunBatch dispatches a batch: items shard to their owning backends
// and the sub-batches run concurrently. A failed sub-batch marks its
// backend down and its items redistribute across survivors on the
// next round, so a backend dying mid-batch costs its in-flight items
// a re-execution somewhere else, never the batch. Items come back in
// spec order, exactly like a single daemon's /v1/batch.
func (co *Coordinator) RunBatch(ctx context.Context, specs []wire.RunSpec) []wire.BatchItem {
	co.batchSpecs.Add(int64(len(specs)))
	items := make([]wire.BatchItem, len(specs))
	pending := make([]int, len(specs))
	for i := range pending {
		pending[i] = i
	}
	// Each round either delivers items or kills at least one backend,
	// so backends+1 rounds always suffice.
	for round := 0; round <= len(co.backends) && len(pending) > 0 && ctx.Err() == nil; round++ {
		groups := make(map[*backend][]int)
		var unassigned []int
		for _, i := range pending {
			if b := co.firstAlive(specs[i]); b != nil {
				groups[b] = append(groups[b], i)
			} else {
				unassigned = append(unassigned, i)
			}
		}
		if len(groups) == 0 {
			pending = unassigned
			break
		}
		var (
			mu   sync.Mutex
			next []int
		)
		next = append(next, unassigned...)
		var wg sync.WaitGroup
		for b, idxs := range groups {
			wg.Add(1)
			go func(b *backend, idxs []int) {
				defer wg.Done()
				sub := make([]wire.RunSpec, len(idxs))
				for j, i := range idxs {
					sub[j] = specs[i]
				}
				res, err := b.c.RunBatch(ctx, sub)
				mu.Lock()
				defer mu.Unlock()
				var se *client.StatusError
				if err != nil && errors.As(err, &se) && !client.Retryable(se.Code) {
					// Deterministic rejection of the whole sub-batch
					// (e.g. a frame the daemon cannot decode): delivered
					// as per-item errors, not failed over.
					for _, i := range idxs {
						items[i] = wire.BatchItem{Label: specs[i].Label, Err: err.Error()}
					}
					return
				}
				if err != nil || len(res) != len(idxs) {
					if err == nil {
						err = fmt.Errorf("cluster: backend returned %d items for %d specs", len(res), len(idxs))
					}
					co.markDown(b, err)
					co.failovers.Add(int64(len(idxs)))
					next = append(next, idxs...)
					return
				}
				b.dispatched.Add(int64(len(idxs)))
				for j, i := range idxs {
					items[i] = res[j]
				}
			}(b, idxs)
		}
		wg.Wait()
		pending = next
	}
	for _, i := range pending {
		items[i] = wire.BatchItem{Label: specs[i].Label, Err: errAllBackendsDown.Error()}
	}
	return items
}

// --- HTTP surface ---

func fail(w http.ResponseWriter, status int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// dispatchStatus maps a dispatch error onto the coordinator's own
// response status. Backend StatusErrors pass through (the coordinator
// is a router, not a translator); transport-level exhaustion is a 502.
func dispatchStatus(err error) (int, string) {
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Code, se.Body
	}
	return http.StatusBadGateway, err.Error()
}

// ServeHTTP dispatches to the v1 endpoints and logs every request.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	co.mux.ServeHTTP(w, r)
	co.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Duration("elapsed", time.Since(start)),
		slog.String("remote", r.RemoteAddr),
	)
}

func (co *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	spec, err := wire.DecodeRunSpec(body)
	if err != nil {
		fail(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		fail(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.Timeout)
	defer cancel()
	report, err := co.Run(ctx, spec)
	if err != nil {
		status, body := dispatchStatus(err)
		fail(w, status, "%s", body)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, wire.ReportToJSON(report, false))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire.EncodeRunReport(report))
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		fail(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	specs, err := wire.DecodeBatchSpec(body)
	if err != nil {
		fail(w, http.StatusBadRequest, "decode batch: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.Timeout)
	defer cancel()
	items := co.RunBatch(ctx, specs)
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, wire.BatchToJSON(items))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire.EncodeBatchReport(items))
}

// BackendInfo is one backend's row in healthz and stats responses.
type BackendInfo struct {
	Addr       string `json:"addr"`
	Alive      bool   `json:"alive"`
	Dispatched int64  `json:"dispatched"`
	Failures   int64  `json:"failures"`
}

func (co *Coordinator) backendInfos() (infos []BackendInfo, aliveCount int) {
	for _, addr := range co.ring.Backends() {
		b := co.backends[addr]
		alive := b.alive.Load()
		if alive {
			aliveCount++
		}
		infos = append(infos, BackendInfo{
			Addr:       b.addr,
			Alive:      alive,
			Dispatched: b.dispatched.Load(),
			Failures:   b.failures.Load(),
		})
	}
	return infos, aliveCount
}

// healthInfo mirrors the daemon healthz body (so internal/client's
// wire-version check works against a coordinator) plus the cluster
// membership view.
type healthInfo struct {
	Status      string        `json:"status"`
	WireVersion int           `json:"wire_version"`
	Protocols   []string      `json:"protocols"`
	Role        string        `json:"role"`
	Backends    []BackendInfo `json:"backends"`
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	infos, alive := co.backendInfos()
	status := "ok"
	code := http.StatusOK
	if alive == 0 {
		// Still answers (the coordinator itself is up) but flags that
		// dispatches will fail until a backend returns.
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(healthInfo{
		Status:      status,
		WireVersion: wire.Version,
		Protocols:   wire.Protocols(),
		Role:        "coordinator",
		Backends:    infos,
	})
}

// StatsInfo is the coordinator's GET /v1/stats body. Cache aggregates
// the live backends' result-cache counters, under the same "cache" key
// a single daemon serves, so loadgen reads either transparently.
type StatsInfo struct {
	Status        string            `json:"status"`
	Role          string            `json:"role"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Runs          int64             `json:"runs"`
	BatchSpecs    int64             `json:"batch_specs"`
	Failovers     int64             `json:"failovers"`
	Backends      []BackendInfo     `json:"backends"`
	Cache         client.CacheStats `json:"cache"`
}

// Stats snapshots the coordinator counters and aggregates cache
// counters from every live backend.
func (co *Coordinator) Stats(ctx context.Context) StatsInfo {
	infos, _ := co.backendInfos()
	info := StatsInfo{
		Status:        "ok",
		Role:          "coordinator",
		UptimeSeconds: time.Since(co.started).Seconds(),
		Runs:          co.runs.Load(),
		BatchSpecs:    co.batchSpecs.Load(),
		Failovers:     co.failovers.Load(),
		Backends:      infos,
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range co.backends {
		if !b.alive.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, co.cfg.ProbeTimeout)
			defer cancel()
			st, err := b.c.Stats(pctx)
			if err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if st.Cache.Enabled {
				info.Cache.Enabled = true
				info.Cache.Hits += st.Cache.Hits
				info.Cache.Misses += st.Cache.Misses
				info.Cache.Evictions += st.Cache.Evictions
				info.Cache.Entries += st.Cache.Entries
				info.Cache.Bytes += st.Cache.Bytes
				info.Cache.MaxBytes += st.Cache.MaxBytes
			}
		}(b)
	}
	wg.Wait()
	if total := info.Cache.Hits + info.Cache.Misses; total > 0 {
		info.Cache.HitRate = float64(info.Cache.Hits) / float64(total)
	}
	return info
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, co.Stats(r.Context()))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Serve runs the coordinator on ln until ctx is canceled: the HTTP
// front end plus the background health loop (one immediate probe pass,
// then one per HealthInterval). Shutdown mirrors server.Serve —
// listener closes immediately, in-flight dispatches get grace.
func (co *Coordinator) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	loopCtx, stopLoop := context.WithCancel(ctx)
	defer stopLoop()
	go func() {
		co.CheckBackends(loopCtx)
		t := time.NewTicker(co.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-loopCtx.Done():
				return
			case <-t.C:
				co.CheckBackends(loopCtx)
			}
		}
	}()
	srv := &http.Server{
		Handler:           co,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	co.log.Info("coordinator shutting down", slog.Duration("grace", grace))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	if err != nil {
		srv.Close()
	}
	<-errc
	return err
}

package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("P5: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("path not connected")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.N() != 6 || g.M() != 6 {
		t.Errorf("C6: n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("cycle degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Errorf("K6 has %d edges, want 15", g.M())
	}
	if g.MaxDegree() != 5 {
		t.Errorf("K6 max degree %d", g.MaxDegree())
	}
}

func TestStar(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 || g.M() != 6 {
		t.Errorf("star: deg0=%d m=%d", g.Degree(0), g.M())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Errorf("K34: n=%d m=%d", g.N(), g.M())
	}
	if _, ok := g.Bipartition(); !ok {
		t.Error("K34 not bipartite")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Errorf("grid n = %d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Errorf("grid m = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Error("grid not connected")
	}
}

func TestGnpEdgeCountConcentrates(t *testing.T) {
	src := rng.NewSource(1)
	n, p := 100, 0.3
	g := Gnp(n, p, src)
	want := p * float64(n*(n-1)/2)
	if got := float64(g.M()); got < want*0.8 || got > want*1.2 {
		t.Errorf("Gnp edge count %v, want ~%v", got, want)
	}
}

func TestGnpExtremes(t *testing.T) {
	src := rng.NewSource(2)
	if Gnp(20, 0, src).M() != 0 {
		t.Error("G(n,0) has edges")
	}
	if Gnp(20, 1, src).M() != 190 {
		t.Error("G(n,1) not complete")
	}
}

func TestGnpBipartite(t *testing.T) {
	src := rng.NewSource(3)
	g := GnpBipartite(10, 15, 1.0, src)
	if g.M() != 150 {
		t.Errorf("complete bipartite via p=1: m=%d", g.M())
	}
	if _, ok := g.Bipartition(); !ok {
		t.Error("GnpBipartite output not bipartite")
	}
}

func TestRandomMatchingUnion(t *testing.T) {
	src := rng.NewSource(4)
	g := RandomMatchingUnion(50, 3, src)
	if g.MaxDegree() > 3 {
		t.Errorf("union of 3 matchings has degree %d", g.MaxDegree())
	}
	if g.M() < 25 {
		t.Errorf("union unexpectedly small: %d edges", g.M())
	}
}

func TestRandomMatchingUnionPanicsOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd n did not panic")
		}
	}()
	RandomMatchingUnion(5, 1, rng.NewSource(1))
}

func TestTwoBlobsWithBridge(t *testing.T) {
	src := rng.NewSource(5)
	g, bridge := TwoBlobsWithBridge(30, 0.3, src)
	if !g.HasEdge(bridge.U, bridge.V) {
		t.Fatal("bridge not present in graph")
	}
	if bridge.U >= 30 || bridge.V < 30 {
		t.Fatalf("bridge %v does not cross the blobs", bridge)
	}
	// Removing the bridge must disconnect its endpoints.
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if e != bridge {
			b.AddEdge(e.U, e.V)
		}
	}
	cut := b.Build()
	comp, _ := cut.Components()
	if comp[bridge.U] == comp[bridge.V] {
		t.Error("bridge endpoints connected without the bridge")
	}
}

// Package gen constructs the deterministic and random graph families used
// by tests, examples and experiments: G(n,p), random bipartite graphs,
// paths, cycles, stars, complete graphs, grids, and unions of matchings.
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic(fmt.Sprintf("gen: cycle needs n >= 3, got %d", n))
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// Star returns the star with one center (vertex 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with sides [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			bl.AddEdge(i, j)
		}
	}
	return bl.Build()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return b.Build()
}

// Gnp returns an Erdős–Rényi G(n, p) sample.
func Gnp(n int, p float64, src *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if src.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// GnpBipartite returns a random bipartite graph with sides [0,a) and
// [a,a+b), each cross pair present independently with probability p.
func GnpBipartite(a, b int, p float64, src *rng.Source) *graph.Graph {
	bl := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			if src.Float64() < p {
				bl.AddEdge(i, j)
			}
		}
	}
	return bl.Build()
}

// RandomMatchingUnion returns a graph on n vertices (n even) that is the
// union of k uniformly random perfect matchings; useful as a bounded-degree
// test family.
func RandomMatchingUnion(n, k int, src *rng.Source) *graph.Graph {
	if n%2 != 0 {
		panic(fmt.Sprintf("gen: RandomMatchingUnion needs even n, got %d", n))
	}
	b := graph.NewBuilder(n)
	for rep := 0; rep < k; rep++ {
		p := src.Perm(n)
		for i := 0; i < n; i += 2 {
			b.AddEdge(p[i], p[i+1])
		}
	}
	return b.Build()
}

// TwoBlobsWithBridge returns the footnote-1 hard-looking instance: two
// disjoint G(half, p) blobs joined by exactly one bridge edge, returned
// together with that bridge. The bridge endpoints are chosen uniformly in
// each blob.
func TwoBlobsWithBridge(half int, p float64, src *rng.Source) (*graph.Graph, graph.Edge) {
	b := graph.NewBuilder(2 * half)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			if src.Float64() < p {
				b.AddEdge(i, j)
			}
			if src.Float64() < p {
				b.AddEdge(half+i, half+j)
			}
		}
	}
	u := src.Intn(half)
	v := half + src.Intn(half)
	b.AddEdge(u, v)
	return b.Build(), graph.NewEdge(u, v)
}

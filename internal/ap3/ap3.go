// Package ap3 constructs large subsets of [m] with no 3-term arithmetic
// progression (3-AP-free sets, also called Salem–Spencer sets).
//
// These sets are the combinatorial core of the Ruzsa–Szemerédi graphs in
// package rsgraph: the paper's Proposition 2.1 relies on Behrend's 1946
// construction, which yields sets of size m / e^{Θ(√log m)}.
//
// A set S is 3-AP-free when no triple a, b, c ∈ S with a ≠ c satisfies
// a + c = 2b. (Equivalently: the only solutions to x + y = 2z in S are
// x = y = z.)
package ap3

import (
	"fmt"
	"math"
	"sort"
)

// IsAPFree reports whether the set contains no non-trivial 3-term
// arithmetic progression. Runs in O(|S|^2) with a hash lookup.
func IsAPFree(set []int) bool {
	in := make(map[int]bool, len(set))
	for _, x := range set {
		if in[x] {
			return false // duplicates disallowed
		}
		in[x] = true
	}
	for i, a := range set {
		for j, c := range set {
			if i == j {
				continue
			}
			if (a+c)%2 == 0 && in[(a+c)/2] && (a+c)/2 != a && (a+c)/2 != c {
				return false
			}
		}
	}
	return true
}

// Behrend returns a 3-AP-free subset of {0, 1, ..., m-1} built with
// Behrend's construction: numbers whose base-d digits are all < d/2 and
// lie on a common sphere (fixed sum of squared digits). Digits below d/2
// prevent carries, so a 3-AP in the integers would be a 3-AP of lattice
// points on a sphere — impossible unless degenerate.
//
// The best sphere radius is selected by pigeonhole over all radii. For
// m >= 2 the result is non-empty; its size is m / e^{Θ(√log m)}.
func Behrend(m int) []int {
	if m <= 0 {
		return nil
	}
	if m <= 2 {
		return []int{0}
	}
	if m <= 4 {
		return []int{0, 1}
	}
	// Choose the number of digits n ≈ √(log2 m), base d = floor(m^(1/n)).
	logM := math.Log2(float64(m))
	n := int(math.Round(math.Sqrt(logM)))
	if n < 1 {
		n = 1
	}
	best := []int{0}
	// The optimal digit count is sensitive to constant factors at small m,
	// so try a small window of digit counts and keep the largest set.
	for nn := n - 1; nn <= n+2; nn++ {
		if nn < 1 {
			continue
		}
		if s := behrendWithDigits(m, nn); len(s) > len(best) {
			best = s
		}
	}
	sort.Ints(best)
	return best
}

// behrendWithDigits runs Behrend's construction with exactly n digits.
func behrendWithDigits(m, n int) []int {
	// Base d such that d^n <= m: d = floor(m^(1/n)).
	d := int(math.Floor(math.Pow(float64(m), 1/float64(n))))
	for pow(d+1, n) <= m {
		d++
	}
	for d > 1 && pow(d, n) > m {
		d--
	}
	if d < 2 {
		return []int{0}
	}
	half := (d + 1) / 2 // digits in [0, half)
	maxRadius := n * (half - 1) * (half - 1)
	buckets := make([][]int, maxRadius+1)
	digits := make([]int, n)
	// Enumerate all digit vectors with entries < half.
	for {
		val, rad := 0, 0
		for i := n - 1; i >= 0; i-- {
			val = val*d + digits[i]
			rad += digits[i] * digits[i]
		}
		if val < m {
			buckets[rad] = append(buckets[rad], val)
		}
		// Increment the digit vector.
		i := 0
		for i < n {
			digits[i]++
			if digits[i] < half {
				break
			}
			digits[i] = 0
			i++
		}
		if i == n {
			break
		}
	}
	best := buckets[0]
	for _, b := range buckets[1:] {
		if len(b) > len(best) {
			best = b
		}
	}
	return append([]int(nil), best...)
}

func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		if r > 1<<40 {
			return 1 << 40
		}
		r *= base
	}
	return r
}

// Greedy returns the lexicographically-greedy 3-AP-free subset of
// {0, ..., m-1} (the Stanley sequence): repeatedly add the smallest value
// that keeps the set AP-free. Size Θ(m^{log_3 2}); smaller than Behrend
// asymptotically, but dense for tiny m and useful as a cross-check.
func Greedy(m int) []int {
	var set []int
	in := make(map[int]bool)
	for x := 0; x < m; x++ {
		ok := true
		// x forms a 3-AP with a < b < x only as the largest element:
		// need b = (a+x)/2 in set.
		for _, a := range set {
			if (a+x)%2 == 0 && in[(a+x)/2] && (a+x)/2 != a && (a+x)/2 != x {
				ok = false
				break
			}
		}
		if ok {
			set = append(set, x)
			in[x] = true
		}
	}
	return set
}

// MaxExhaustive returns a maximum-size 3-AP-free subset of {0,...,m-1} by
// branch-and-bound. Only feasible for small m (≈ 30 and below); it is the
// ground truth used by tests.
func MaxExhaustive(m int) ([]int, error) {
	if m > 34 {
		return nil, fmt.Errorf("ap3: exhaustive search infeasible for m=%d", m)
	}
	var best []int
	var cur []int
	in := make([]bool, m)
	var rec func(x int)
	rec = func(x int) {
		if len(cur)+m-x <= len(best) {
			return // prune: cannot beat best
		}
		if x == m {
			if len(cur) > len(best) {
				best = append(best[:0:0], cur...)
			}
			return
		}
		// Try including x.
		ok := true
		for _, a := range cur {
			mid2 := a + x
			if mid2%2 == 0 {
				mid := mid2 / 2
				if mid != a && mid != x && mid < m && in[mid] {
					ok = false
					break
				}
			}
			// Also x could be the middle: need 2x - a in set.
			if r := 2*x - a; r != x && r >= 0 && r < m && in[r] {
				ok = false
				break
			}
		}
		if ok {
			cur = append(cur, x)
			in[x] = true
			rec(x + 1)
			in[x] = false
			cur = cur[:len(cur)-1]
		}
		rec(x + 1)
	}
	rec(0)
	sort.Ints(best)
	return best, nil
}

// Best returns the larger of Behrend(m) and Greedy(m): at practical sizes
// (m up to a few thousand) the greedy set is often larger, while Behrend
// dominates asymptotically.
func Best(m int) []int {
	b, g := Behrend(m), Greedy(m)
	if len(g) >= len(b) {
		return g
	}
	return b
}

package ap3

import (
	"testing"
)

func TestIsAPFree(t *testing.T) {
	cases := []struct {
		name string
		set  []int
		want bool
	}{
		{"empty", nil, true},
		{"singleton", []int{5}, true},
		{"pair", []int{1, 7}, true},
		{"classic AP", []int{1, 3, 5}, false},
		{"contains AP subset", []int{0, 1, 2, 10}, false},
		{"stanley prefix", []int{0, 1, 3, 4, 9, 10, 12, 13}, true},
		{"duplicates", []int{2, 2}, false},
		{"unordered AP", []int{5, 1, 3}, false},
		{"zero-gap is not AP", []int{4, 8}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := IsAPFree(c.set); got != c.want {
				t.Errorf("IsAPFree(%v) = %v, want %v", c.set, got, c.want)
			}
		})
	}
}

func TestGreedyIsStanleySequence(t *testing.T) {
	// The greedy 3-AP-free set over [0,14) is the Stanley sequence
	// 0,1,3,4,9,10,12,13 (base-3 digits in {0,1}).
	got := Greedy(14)
	want := []int{0, 1, 3, 4, 9, 10, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("Greedy(14) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Greedy(14) = %v, want %v", got, want)
		}
	}
}

func TestGreedyAlwaysAPFree(t *testing.T) {
	for _, m := range []int{0, 1, 2, 10, 50, 200} {
		if s := Greedy(m); !IsAPFree(s) {
			t.Errorf("Greedy(%d) = %v is not AP-free", m, s)
		}
	}
}

func TestBehrendAPFree(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 10, 30, 100, 500, 2000, 10000} {
		s := Behrend(m)
		if len(s) == 0 {
			t.Errorf("Behrend(%d) is empty", m)
			continue
		}
		if !IsAPFree(s) {
			t.Errorf("Behrend(%d) is not AP-free", m)
		}
		for _, v := range s {
			if v < 0 || v >= m {
				t.Errorf("Behrend(%d) contains out-of-range %d", m, v)
			}
		}
	}
}

func TestBehrendGrowth(t *testing.T) {
	// Behrend's construction only overtakes the greedy (Stanley) sets at
	// astronomically large m; at practical sizes its constants make it
	// small. What must hold at any size: the sets grow with m and clear a
	// loose sqrt-scale floor.
	sizes := map[int]int{1000: 8, 10000: 20, 100000: 60}
	for _, m := range []int{1000, 10000, 100000} {
		s := Behrend(m)
		if len(s) < sizes[m] {
			t.Errorf("Behrend(%d) has %d elements, want >= %d", m, len(s), sizes[m])
		}
	}
}

func TestBestDominatedByGreedyAtPracticalSizes(t *testing.T) {
	// Documents the constant-factor reality behind Proposition 2.1: at
	// m <= 10^4, the greedy AP-free set is larger than Behrend's, so Best
	// must return the greedy one.
	for _, m := range []int{100, 1000} {
		b, g, best := Behrend(m), Greedy(m), Best(m)
		if len(g) <= len(b) {
			t.Skipf("greedy no longer dominates at m=%d; update this test", m)
		}
		if len(best) != len(g) {
			t.Errorf("Best(%d) size %d, want greedy size %d", m, len(best), len(g))
		}
	}
}

func TestBehrendMonotoneish(t *testing.T) {
	// Set size should not collapse as m grows (allowing small local dips
	// from digit-count boundaries).
	prev := 0
	for _, m := range []int{100, 1000, 10000} {
		s := Behrend(m)
		if len(s) <= prev {
			t.Errorf("Behrend size did not grow: m=%d size=%d prev=%d", m, len(s), prev)
		}
		prev = len(s)
	}
}

func TestMaxExhaustiveKnownValues(t *testing.T) {
	// Known maximum sizes of 3-AP-free subsets of {0,...,m-1}: r(m) in
	// OEIS A003002: r(1..10)=1,2,2,3,4,4,4,4,5,5 and r(20)=9.
	want := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 4, 6: 4, 7: 4, 8: 4, 9: 5, 10: 5, 20: 9}
	for m, size := range want {
		s, err := MaxExhaustive(m)
		if err != nil {
			t.Fatalf("MaxExhaustive(%d): %v", m, err)
		}
		if !IsAPFree(s) {
			t.Errorf("MaxExhaustive(%d) = %v not AP-free", m, s)
		}
		if len(s) != size {
			t.Errorf("MaxExhaustive(%d) size = %d, want %d", m, len(s), size)
		}
	}
}

func TestMaxExhaustiveRejectsLarge(t *testing.T) {
	if _, err := MaxExhaustive(100); err == nil {
		t.Error("MaxExhaustive(100) did not error")
	}
}

func TestGreedyNeverBeatsExhaustive(t *testing.T) {
	for m := 1; m <= 25; m++ {
		opt, err := MaxExhaustive(m)
		if err != nil {
			t.Fatal(err)
		}
		if g := Greedy(m); len(g) > len(opt) {
			t.Errorf("greedy(%d)=%d exceeds optimum %d", m, len(g), len(opt))
		}
		if b := Behrend(m); len(b) > len(opt) {
			t.Errorf("behrend(%d)=%d exceeds optimum %d", m, len(b), len(opt))
		}
	}
}

func TestBestPicksLarger(t *testing.T) {
	for _, m := range []int{10, 100, 1000} {
		b, g, best := Behrend(m), Greedy(m), Best(m)
		if len(best) < len(b) || len(best) < len(g) {
			t.Errorf("Best(%d)=%d smaller than behrend %d or greedy %d", m, len(best), len(b), len(g))
		}
		if !IsAPFree(best) {
			t.Errorf("Best(%d) not AP-free", m)
		}
	}
}

func TestBehrendSorted(t *testing.T) {
	s := Behrend(500)
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("Behrend output not strictly sorted at %d", i)
		}
	}
}

func BenchmarkBehrend10000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Behrend(10000)
	}
}

func BenchmarkGreedy1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Greedy(1000)
	}
}

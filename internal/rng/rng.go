// Package rng supplies deterministic pseudo-randomness for the sketching
// model.
//
// The model gives every player and the referee access to the same public
// random string. PublicCoins models that string as a root seed from which
// labelled, independent sub-streams are derived, so a player and the
// referee can reconstruct exactly the same coins by agreeing on a label
// (e.g. "agm/level/3" or "vertex/17") without any communication.
package rng

import "math/bits"

// splitmix64 advances the SplitMix64 state and returns the next output.
// SplitMix64 passes BigCrush and is the canonical seeding generator for
// the xoshiro family.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic 64-bit pseudo-random generator. It
// intentionally mirrors a subset of math/rand's API so call sites read
// naturally, while remaining fully reproducible from its seed.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with the given value.
func NewSource(seed uint64) *Source {
	// One warm-up mix so that nearby seeds diverge immediately.
	s := &Source{state: seed}
	splitmix64(&s.state)
	return s
}

// Uint64 returns the next 64 uniform pseudo-random bits.
func (s *Source) Uint64() uint64 { return splitmix64(&s.state) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method.
func (s *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the given swap
// function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// PublicCoins is a hierarchical source of shared randomness. Two parties
// holding the same PublicCoins derive identical sub-streams for identical
// labels, independent across distinct labels (up to the PRF quality of the
// underlying mixing).
type PublicCoins struct {
	seed uint64
}

// NewPublicCoins returns the public coin tree rooted at seed.
func NewPublicCoins(seed uint64) *PublicCoins { return &PublicCoins{seed: seed} }

// Derive returns the child coin tree for the given label.
func (c *PublicCoins) Derive(label string) *PublicCoins {
	return &PublicCoins{seed: mixLabel(c.seed, label)}
}

// DeriveIndex returns the child coin tree for an integer label, e.g. a
// vertex ID or a repetition index.
func (c *PublicCoins) DeriveIndex(i int) *PublicCoins {
	st := c.seed ^ 0xa5a5a5a55a5a5a5a
	splitmix64(&st)
	st ^= uint64(i)
	return &PublicCoins{seed: splitmix64(&st)}
}

// Source returns a fresh deterministic generator for this node of the coin
// tree. Repeated calls return identically-seeded (hence identical)
// sources, which is exactly the "shared public string" semantics.
func (c *PublicCoins) Source() *Source { return NewSource(c.seed) }

// Seed exposes the node's seed, e.g. for logging reproducible runs.
func (c *PublicCoins) Seed() uint64 { return c.seed }

// mixLabel folds a string label into a seed with an FNV-like walk followed
// by SplitMix64 finalization.
func mixLabel(seed uint64, label string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return splitmix64(&h)
}

package rng

import (
	"math"
	"testing"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs of 64", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	const n, trials = 10, 100000
	s := NewSource(123)
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d appeared %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(9)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(11)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	const n, trials = 5, 50000
	s := NewSource(13)
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d count %d, want ~%.0f", v, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := NewSource(17)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make(map[int]bool)
	for _, x := range v {
		if seen[x] {
			t.Fatalf("Shuffle duplicated element %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Shuffle lost elements: %v", v)
	}
}

func TestPublicCoinsSharedView(t *testing.T) {
	alice := NewPublicCoins(99).Derive("protocol").DeriveIndex(3)
	bob := NewPublicCoins(99).Derive("protocol").DeriveIndex(3)
	sa, sb := alice.Source(), bob.Source()
	for i := 0; i < 20; i++ {
		if sa.Uint64() != sb.Uint64() {
			t.Fatal("players with the same labels see different public coins")
		}
	}
}

func TestPublicCoinsLabelsIndependent(t *testing.T) {
	root := NewPublicCoins(5)
	a := root.Derive("a").Source().Uint64()
	b := root.Derive("b").Source().Uint64()
	if a == b {
		t.Error("distinct labels produced identical streams")
	}
	i0 := root.DeriveIndex(0).Source().Uint64()
	i1 := root.DeriveIndex(1).Source().Uint64()
	if i0 == i1 {
		t.Error("distinct indices produced identical streams")
	}
}

func TestPublicCoinsSourceIsStable(t *testing.T) {
	c := NewPublicCoins(1).Derive("x")
	if c.Source().Uint64() != c.Source().Uint64() {
		t.Error("repeated Source() calls are not identically seeded")
	}
}

func TestDeriveIndexNotLinear(t *testing.T) {
	// Regression guard: DeriveIndex must mix, not just xor, so that
	// index i and seed s do not collide with index i^d and seed s^d.
	a := NewPublicCoins(0).DeriveIndex(1).Seed()
	b := NewPublicCoins(1).DeriveIndex(0).Seed()
	if a == b {
		t.Error("DeriveIndex is linear in (seed, index)")
	}
}

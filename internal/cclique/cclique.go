// Package cclique simulates the broadcast congested clique model: in each
// round every player broadcasts one message computed from its local view,
// the public coins, and the transcript of all previous rounds; after the
// last round a referee (equivalently, any player) computes the output from
// the full transcript.
//
// Restricted to one round with a referee-only output, this model is
// exactly the paper's distributed sketching model (Section 1.1 and [30,
// 39]); the adapter OneRound and experiment E12 exercise that equivalence.
// Multi-round protocols are the escape hatch the paper points to in
// Section 1.1: with one extra adaptive round, maximal matching and MIS
// admit O(√n·polylog n)-bit messages ([46], [35]), implemented in
// packages matchproto and misproto.
package cclique

import (
	"context"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Transcript gives read access to all broadcasts of completed rounds. It
// is the engine's sealed transcript: rounds are immutable once visible
// (see engine.Transcript for the full guarantee).
type Transcript = engine.Transcript

// Protocol is a multi-round broadcast protocol with output type O.
type Protocol[O any] interface {
	// Name identifies the protocol in tables.
	Name() string
	// Rounds is the total number of broadcast rounds.
	Rounds() int
	// Broadcast computes player view.ID's message for the given round;
	// transcript holds every earlier round.
	Broadcast(round int, view core.VertexView, transcript *Transcript, coins *rng.PublicCoins) (*bitio.Writer, error)
	// Decode computes the output from the complete transcript.
	Decode(n int, transcript *Transcript, coins *rng.PublicCoins) (O, error)
}

// Result reports one execution.
type Result[O any] struct {
	Output O
	// MaxMessageBits is the worst-case single message length over all
	// rounds and players.
	MaxMessageBits int
	// RoundMaxBits[r] is the worst-case message length within round r.
	RoundMaxBits []int
	// TotalBits is the sum of all message lengths.
	TotalBits int
}

// Run executes the protocol on g. It is a thin wrapper over a one-worker
// execution engine, so it is bit-identical to every parallel engine run;
// callers who want concurrency or metrics use package engine directly.
func Run[O any](p Protocol[O], g *graph.Graph, coins *rng.PublicCoins) (Result[O], error) {
	eng := &engine.Engine{Workers: 1}
	er, err := engine.Run[O](context.Background(), eng, p, g, coins)
	res := Result[O]{
		Output:         er.Output,
		MaxMessageBits: er.Stats.MaxMessageBits,
		RoundMaxBits:   er.Stats.RoundMaxBits,
		TotalBits:      int(er.Stats.TotalBits),
	}
	if res.RoundMaxBits == nil {
		res.RoundMaxBits = make([]int, 0, p.Rounds())
	}
	for len(res.RoundMaxBits) < p.Rounds() {
		res.RoundMaxBits = append(res.RoundMaxBits, 0)
	}
	return res, err
}

// OneRound adapts a one-round sketching protocol (package core) to the
// broadcast congested clique, witnessing the models' equivalence for
// one-round computations.
type OneRound[O any] struct {
	P core.Protocol[O]
}

var _ Protocol[int] = (*OneRound[int])(nil)

// Name implements Protocol.
func (a *OneRound[O]) Name() string { return a.P.Name() + "/bcc" }

// Rounds implements Protocol.
func (a *OneRound[O]) Rounds() int { return 1 }

// Broadcast implements Protocol.
func (a *OneRound[O]) Broadcast(_ int, view core.VertexView, _ *Transcript, coins *rng.PublicCoins) (*bitio.Writer, error) {
	return a.P.Sketch(view, coins)
}

// BroadcastBlock implements engine.BlockBroadcaster: when the wrapped
// protocol is a core.BlockSketcher the whole block goes through its
// columnar path; otherwise it falls back to per-view Sketch calls, which
// is byte-identical to the engine's own scalar loop. Either way the
// per-vertex and block executions produce the same transcript bits.
func (a *OneRound[O]) BroadcastBlock(_ int, views []core.VertexView, _ *Transcript, coins *rng.PublicCoins, out []*bitio.Writer) (int, error) {
	if bs, ok := a.P.(core.BlockSketcher); ok {
		return bs.SketchBlock(views, coins, out)
	}
	for i, view := range views {
		w, err := a.P.Sketch(view, coins)
		if err != nil {
			return i, err
		}
		out[i] = w
	}
	return 0, nil
}

// Decode implements Protocol.
func (a *OneRound[O]) Decode(n int, transcript *Transcript, coins *rng.PublicCoins) (O, error) {
	readers := make([]*bitio.Reader, n)
	for v := 0; v < n; v++ {
		readers[v] = transcript.Message(0, v)
	}
	return a.P.Decode(n, readers, coins)
}

// DecodeResilient lifts the wrapped protocol's resilient decode (when it
// has one) to the transcript level, so faults.Run can degrade gracefully
// over damaged one-round transcripts. When the wrapped protocol is not
// resilience-aware, it falls back to the strict Decode: a clean decode
// reports ok (faults.Run's channel-record folding still demotes it if
// faults were injected) and a decode error reports failed.
func (a *OneRound[O]) DecodeResilient(n int, transcript *Transcript, coins *rng.PublicCoins) (O, core.Resilience, error) {
	readers := make([]*bitio.Reader, n)
	for v := 0; v < n; v++ {
		readers[v] = transcript.Message(0, v)
	}
	if rp, ok := a.P.(core.ResilientProtocol[O]); ok {
		return rp.DecodeResilient(n, readers, coins)
	}
	out, err := a.P.Decode(n, readers, coins)
	if err != nil {
		return out, core.ResilienceFailed, err
	}
	return out, core.ResilienceOK, nil
}

package cclique

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// echoProtocol broadcasts the player's degree in round 0 and, in round 1,
// the sum of all round-0 degrees (exercising transcript access); output is
// the referee's recomputation of 2m.
type echoProtocol struct{}

func (echoProtocol) Name() string { return "echo" }
func (echoProtocol) Rounds() int  { return 2 }

func (echoProtocol) Broadcast(round int, view core.VertexView, tr *Transcript, _ *rng.PublicCoins) (*bitio.Writer, error) {
	w := &bitio.Writer{}
	switch round {
	case 0:
		w.WriteUvarint(uint64(view.Degree()))
	case 1:
		sum := uint64(0)
		for v := 0; v < view.N; v++ {
			d, err := tr.Message(0, v).ReadUvarint()
			if err != nil {
				return nil, err
			}
			sum += d
		}
		w.WriteUvarint(sum)
	}
	return w, nil
}

func (echoProtocol) Decode(n int, tr *Transcript, _ *rng.PublicCoins) (int, error) {
	// All round-1 messages must agree; return the common value.
	want := uint64(0)
	for v := 0; v < n; v++ {
		got, err := tr.Message(1, v).ReadUvarint()
		if err != nil {
			return 0, err
		}
		if v == 0 {
			want = got
		} else if got != want {
			return 0, errMismatch
		}
	}
	return int(want), nil
}

var errMismatch = errorString("round-1 broadcasts disagree")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestMultiRoundTranscriptAccess(t *testing.T) {
	g := gen.Gnp(20, 0.3, rng.NewSource(1))
	res, err := Run[int](echoProtocol{}, g, rng.NewPublicCoins(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 2*g.M() {
		t.Errorf("degree sum = %d, want %d", res.Output, 2*g.M())
	}
	if len(res.RoundMaxBits) != 2 {
		t.Fatalf("RoundMaxBits = %v", res.RoundMaxBits)
	}
	if res.MaxMessageBits < res.RoundMaxBits[0] || res.MaxMessageBits < res.RoundMaxBits[1] {
		t.Error("MaxMessageBits below a round max")
	}
}

func TestTranscriptMessagesAreFreshReaders(t *testing.T) {
	g := gen.Path(3)
	p := echoProtocol{}
	res, err := Run[int](p, g, rng.NewPublicCoins(3))
	if err != nil {
		t.Fatal(err)
	}
	// Decode read every round-1 message once; a second Run must still
	// succeed (no shared reader state) — implicitly verified by rerunning.
	res2, err := Run[int](p, g, rng.NewPublicCoins(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != res2.Output {
		t.Error("reruns disagree")
	}
}

func TestOneRoundAdapterEquivalence(t *testing.T) {
	// E12: a one-round sketching protocol produces identical output when
	// run through the BCC simulator with the same coins.
	g := gen.Gnp(25, 0.25, rng.NewSource(4))
	coins := rng.NewPublicCoins(5)
	p := core.NewTrivialMatching()

	direct, err := core.Run(p, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	viaBCC, err := Run[[]graph.Edge](&OneRound[[]graph.Edge]{P: p}, g, coins)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Output) != len(viaBCC.Output) {
		t.Fatalf("outputs differ: %d vs %d edges", len(direct.Output), len(viaBCC.Output))
	}
	for i := range direct.Output {
		if direct.Output[i] != viaBCC.Output[i] {
			t.Fatal("outputs differ")
		}
	}
	if direct.MaxSketchBits != viaBCC.MaxMessageBits {
		t.Errorf("cost differs: %d vs %d", direct.MaxSketchBits, viaBCC.MaxMessageBits)
	}
}

func TestOneRoundAdapterName(t *testing.T) {
	a := &OneRound[[]graph.Edge]{P: core.NewTrivialMatching()}
	if a.Name() != "trivial-full-graph/bcc" {
		t.Errorf("Name() = %q", a.Name())
	}
	if a.Rounds() != 1 {
		t.Errorf("Rounds() = %d", a.Rounds())
	}
}

func TestRunToleratesNilWriters(t *testing.T) {
	g := gen.Path(4)
	res, err := Run[int](silentProtocol{}, g, rng.NewPublicCoins(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 4 || res.MaxMessageBits != 0 || res.TotalBits != 0 {
		t.Errorf("silent run: %+v", res)
	}
}

type silentProtocol struct{}

func (silentProtocol) Name() string { return "silent" }
func (silentProtocol) Rounds() int  { return 1 }
func (silentProtocol) Broadcast(int, core.VertexView, *Transcript, *rng.PublicCoins) (*bitio.Writer, error) {
	return nil, nil
}
func (silentProtocol) Decode(n int, _ *Transcript, _ *rng.PublicCoins) (int, error) {
	return n, nil
}

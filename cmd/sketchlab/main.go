// Command sketchlab runs the reproduction experiments E1–E19 (DESIGN.md)
// and renders their tables.
//
// Usage:
//
//	sketchlab [-scale small|full] [-seed N] [-run E5,E6] [-workers N] [-faults PLAN]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// -workers sets the execution-engine worker count for engine-backed
// sweeps (0 = GOMAXPROCS). The engine is bit-deterministic, so every
// value — including -workers 1, the sequential baseline — produces
// byte-identical output; the flag only changes wall time.
//
// -faults adds a custom fault plan to the E20 resilience sweep, e.g.
// "drop=0.1,corrupt=0.05,flip=4,straggle=0.01,delay=2ms". Faults are
// label-derived from the seed, so faulted runs are equally deterministic
// at every -workers value.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiments (the heap profile is taken after the final run), for
// inspecting where sketch-construction time and allocations go.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
)

func main() {
	// run does the real work so that profile-flushing defers execute
	// before the process decides its exit code.
	if !run() {
		os.Exit(1)
	}
}

func run() (ok bool) {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	seed := flag.Uint64("seed", 42, "root seed for all randomness")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "text", "output format: text or md")
	workers := flag.Int("workers", 0, "engine workers for batched sweeps (0 = GOMAXPROCS)")
	faultsFlag := flag.String("faults", "", "custom fault plan for the E20 sweep (drop=P,corrupt=P,flip=K,straggle=P,delay=D)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the runs) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: memprofile: %v\n", err)
			}
		}()
	}

	experiments.SetWorkers(*workers)
	plan, err := faults.ParsePlan(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sketchlab: %v\n", err)
		os.Exit(2)
	}
	experiments.SetFaultPlan(plan)

	if *list {
		for _, entry := range experiments.Registry() {
			fmt.Println(entry.ID)
		}
		return true
	}

	scale := experiments.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "sketchlab: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, entry := range experiments.Registry() {
		if len(want) > 0 && !want[entry.ID] {
			continue
		}
		tables, err := entry.Run(scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: %s: %v\n", entry.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			var err error
			switch *format {
			case "md":
				err = t.RenderMarkdown(os.Stdout)
			default:
				err = t.Render(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: render %s: %v\n", t.ID, err)
				failed = true
			}
		}
	}
	return !failed
}

// Command sketchlab runs the reproduction experiments E1–E19 (DESIGN.md)
// and renders their tables.
//
// Usage:
//
//	sketchlab [-scale small|full] [-seed N] [-run E5,E6] [-workers N]
//
// -workers sets the execution-engine worker count for engine-backed
// sweeps (0 = GOMAXPROCS). The engine is bit-deterministic, so every
// value — including -workers 1, the sequential baseline — produces
// byte-identical output; the flag only changes wall time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	seed := flag.Uint64("seed", 42, "root seed for all randomness")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "text", "output format: text or md")
	workers := flag.Int("workers", 0, "engine workers for batched sweeps (0 = GOMAXPROCS)")
	flag.Parse()

	experiments.SetWorkers(*workers)

	if *list {
		for _, entry := range experiments.Registry() {
			fmt.Println(entry.ID)
		}
		return
	}

	scale := experiments.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "sketchlab: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, entry := range experiments.Registry() {
		if len(want) > 0 && !want[entry.ID] {
			continue
		}
		tables, err := entry.Run(scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: %s: %v\n", entry.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			var err error
			switch *format {
			case "md":
				err = t.RenderMarkdown(os.Stdout)
			default:
				err = t.Render(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: render %s: %v\n", t.ID, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

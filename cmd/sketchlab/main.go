// Command sketchlab runs the reproduction experiments E1–E40 (DESIGN.md)
// and renders their tables, and drives the fixture parity sweep either
// in-process or against a refereed daemon.
//
// Usage:
//
//	sketchlab [-scale small|full] [-seed N] [-run E5,E6] [-workers N] [-faults PLAN]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	sketchlab -sweep [-workers N] [-json]
//	sketchlab -remote HOST:PORT [-workers N] [-json]
//
// -sweep executes the committed-fixture specs (wire.SmokeSpecs) locally
// and prints one deterministic line per run: label, protocol, transcript
// digest, bit counts, outcome, resilience — and nothing that varies
// between hosts or worker counts. -remote dispatches the same sweep to a
// refereed daemon; because local and remote share one execution path,
// the two outputs diff clean byte for byte, which is exactly what the CI
// smoke job checks. -json replaces the text lines with the service's
// JSON report form (wire.ReportJSON, transcripts elided).
//
// -workers sets the execution-engine worker count (0 = GOMAXPROCS) and
// must be >= 0. The engine is bit-deterministic, so output is
// byte-identical for any value — including -workers 1, the sequential
// baseline; the flag only changes wall time.
//
// -block (default true) selects the columnar block execution path for
// protocols that support it (engine.BlockBroadcaster); -block=false
// forces the per-vertex scalar path. Like -workers, the flag never
// changes a single output bit — transcripts and digests are identical on
// both paths — it only trades execution strategy for speed.
//
// -faults adds a custom fault plan to the E20 resilience sweep, e.g.
// "drop=0.1,corrupt=0.05,flip=4,straggle=0.01,delay=2ms"
// (fbdrop=P/fbcorrupt=P target the referee feedback lane of adaptive
// protocols). Faults are label-derived from the seed, so faulted runs
// are equally deterministic at every -workers value.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiments (the heap profile is taken after the final run), for
// inspecting where sketch-construction time and allocations go.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/wire"
)

func main() {
	// run does the real work so that profile-flushing defers execute
	// before the process decides its exit code.
	if !run() {
		os.Exit(1)
	}
}

func run() (ok bool) {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	seed := flag.Uint64("seed", 42, "root seed for all randomness")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "text", "output format: text or md")
	workers := flag.Int("workers", 0, "engine workers, >= 0 (0 = GOMAXPROCS); output is byte-identical for any value")
	faultsFlag := flag.String("faults", "", "custom fault plan for the E20 sweep (drop=P,corrupt=P,flip=K,straggle=P,delay=D,fbdrop=P,fbcorrupt=P)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the runs) to this file")
	sweep := flag.Bool("sweep", false, "run the fixture parity sweep locally instead of experiments")
	remote := flag.String("remote", "", "dispatch the parity sweep to a refereed daemon at this HOST:PORT")
	jsonOut := flag.Bool("json", false, "emit sweep results as JSON reports (wire.ReportJSON) instead of text lines")
	block := flag.Bool("block", true, "use columnar block execution where protocols support it; -block=false forces the per-vertex scalar path (output is byte-identical either way)")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "sketchlab: -workers must be >= 0 (0 = GOMAXPROCS), got %d\n", *workers)
		os.Exit(2)
	}
	engine.SetBlockExecution(*block)
	if *sweep || *remote != "" || *jsonOut {
		return runSweep(*remote, *workers, *jsonOut)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: memprofile: %v\n", err)
			}
		}()
	}

	experiments.SetWorkers(*workers)
	plan, err := faults.ParsePlan(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sketchlab: %v\n", err)
		os.Exit(2)
	}
	experiments.SetFaultPlan(plan)

	if *list {
		for _, entry := range experiments.Registry() {
			fmt.Println(entry.ID)
		}
		return true
	}

	scale := experiments.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "sketchlab: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, entry := range experiments.Registry() {
		if len(want) > 0 && !want[entry.ID] {
			continue
		}
		tables, err := entry.Run(scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: %s: %v\n", entry.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			var err error
			switch *format {
			case "md":
				err = t.RenderMarkdown(os.Stdout)
			default:
				err = t.Render(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: render %s: %v\n", t.ID, err)
				failed = true
			}
		}
	}
	return !failed
}

// runSweep executes the fixture parity sweep — locally, or via a
// refereed daemon when remote is set — and prints one report per spec.
// The text form contains only fields that are deterministic across
// hosts, transports, and worker counts, so two sweeps of the same tree
// diff clean regardless of where or how wide they ran.
func runSweep(remote string, workers int, jsonOut bool) (ok bool) {
	ctx := context.Background()
	specs := wire.SmokeSpecs(workers)
	reports := make([]*wire.RunReport, 0, len(specs))
	if remote != "" {
		base := remote
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c := client.New(client.Config{BaseURL: base})
		if _, err := c.Health(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: remote %s: %v\n", remote, err)
			return false
		}
		for _, spec := range specs {
			report, err := c.Run(ctx, spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: remote %s: %v\n", spec.Label, err)
				return false
			}
			reports = append(reports, report)
		}
	} else {
		for _, spec := range specs {
			report, err := wire.ExecuteSpec(ctx, spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sketchlab: %s: %v\n", spec.Label, err)
				return false
			}
			reports = append(reports, report)
		}
	}
	if jsonOut {
		out := make([]wire.ReportJSON, len(reports))
		for i, r := range reports {
			out[i] = wire.ReportToJSON(r, false)
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchlab: %v\n", err)
			return false
		}
		fmt.Println(string(data))
		return true
	}
	for _, r := range reports {
		outcome := fmt.Sprintf("%s/%d", r.Outcome.Kind, r.Outcome.Size)
		if r.Outcome.Checked {
			if r.Outcome.Valid {
				outcome += ":valid"
			} else {
				outcome += ":INVALID"
			}
		}
		fmt.Printf("%-26s protocol=%-18s total_bits=%-8d fb_bits=%-6d max_msg_bits=%-6d outcome=%-16s resilience=%-8s digest=%s\n",
			r.Spec.Label, r.Spec.Protocol, r.Stats.TotalBits, r.Stats.FeedbackBits,
			r.Stats.MaxMessageBits, outcome, r.Stats.Faults.Resilience, r.Digest())
	}
	return true
}

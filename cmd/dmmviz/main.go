// Command dmmviz renders a sample from the hard distribution D_MM as
// Graphviz DOT — a machine-generated Figure 1: public vertices in
// yellow, each copy's unique vertices in their own color, surviving
// special-matching edges bold and blue.
//
// Usage:
//
//	dmmviz -m 8 -k 3 -seed 1 > dmm.dot && dot -Tsvg dmm.dot -o dmm.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

var copyColors = []string{
	"lightgreen", "tan", "lightpink", "lightskyblue", "plum", "khaki",
	"palegreen", "lightsalmon",
}

func main() {
	m := flag.Int("m", 8, "RS family parameter")
	k := flag.Int("k", 3, "number of copies")
	drop := flag.Float64("drop", 0.5, "edge drop probability")
	seed := flag.Uint64("seed", 1, "sampler seed")
	flag.Parse()

	rs, err := rsgraph.BuildBehrend(*m)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmviz: %v\n", err)
		os.Exit(1)
	}
	inst, err := harddist.Sample(harddist.Params{RS: rs, K: *k, DropProb: *drop}, rng.NewSource(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmviz: %v\n", err)
		os.Exit(1)
	}

	vertexClass := make(map[int]string)
	for _, v := range inst.PublicVertices() {
		vertexClass[v] = `style="filled", fillcolor="gold", shape="box"`
	}
	for i := 0; i < *k; i++ {
		color := copyColors[i%len(copyColors)]
		for _, v := range inst.UniqueVertices(i) {
			vertexClass[v] = fmt.Sprintf(`style="filled", fillcolor=%q`, color)
		}
	}
	edgeClass := make(map[graph.Edge]string)
	for i := 0; i < *k; i++ {
		for _, e := range inst.SpecialMatchingSurvived(i) {
			edgeClass[e] = `color="blue", penwidth=3`
		}
	}

	name := fmt.Sprintf("dmm_m%d_k%d_jstar%d", *m, *k, inst.JStar)
	if err := graph.WriteDOT(os.Stdout, inst.G, name, vertexClass, edgeClass); err != nil {
		fmt.Fprintf(os.Stderr, "dmmviz: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dmmviz: n=%d m=%d j*=%d surviving special edges=%d (bold blue)\n",
		inst.G.N(), inst.G.M(), inst.JStar, inst.SurvivedSpecialCount())
}

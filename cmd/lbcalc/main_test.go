package main

import "testing"

func TestParseIntsRejectsBadValues(t *testing.T) {
	for _, bad := range []string{"", "abc", "25,", "25,-3", "0", "-1", "25,0,100"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
	got, err := parseInts(" 25, 100 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 25 || got[1] != 100 {
		t.Errorf("parseInts: %v", got)
	}
}

// Command lbcalc evaluates the paper's Theorem 1/2 lower-bound formulas:
// given RS-graph shapes, it prints the required per-player sketch bits.
//
// Usage:
//
//	lbcalc [-m 25,100,400] [-paper-n 1000,100000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	ms := flag.String("m", "25,100,400,1600", "constructive-family parameters")
	paperNs := flag.String("paper-n", "1000,10000,100000,1000000", "asymptotic-shape RS sizes N")
	flag.Parse()

	mList, err := parseInts(*ms)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbcalc: -m: %v\n", err)
		os.Exit(2)
	}
	nList, err := parseInts(*paperNs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbcalc: -paper-n: %v\n", err)
		os.Exit(2)
	}

	fmt.Println("Theorem 1 counting bound, constructive (Behrend/greedy) family:")
	fmt.Printf("%8s %8s %6s %8s %10s %12s %12s\n", "m", "N", "r", "t=k", "n", "MM bits", "MIS bits")
	rows, err := bounds.Table(mList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbcalc: %v\n", err)
		os.Exit(1)
	}
	for i, row := range rows {
		fmt.Printf("%8d %8d %6d %8d %10d %12.3f %12.3f\n",
			mList[i], row.Shape.N, row.Shape.R, row.Shape.T, row.NTotal,
			row.BitsPerPlayer, bounds.MISBound(row.BitsPerPlayer))
	}

	fmt.Println()
	fmt.Println("Theorem 1 at the paper's asymptotic shape (t = N/3, r = N/e^{c√log N}):")
	fmt.Printf("%10s %10s %12s %12s %10s\n", "N", "r", "n", "MM bits", "r/36")
	for _, n := range nList {
		shape := bounds.PaperShape(n)
		row, err := bounds.PaperRow(shape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbcalc: N=%d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("%10d %10d %12d %12.3f %10.3f\n",
			shape.N, shape.R, row.NTotal, row.BitsPerPlayer, float64(shape.R)/36)
	}
}

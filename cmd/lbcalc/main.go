// Command lbcalc drives the lowerbound registry: it evaluates the
// registered analytic bound calculators (the Theorem 1/2 tables) and
// runs the registered obligation checkers over sampled hard-distribution
// instances through the shared Runner.
//
// Usage:
//
//	lbcalc [-m 25,100,400] [-paper-n 1000,100000]   analytic tables
//	lbcalc -list                                    registry contents
//	lbcalc -obligations [-seed 42] [-trials 3]      every distribution at its smoke spec
//	lbcalc -dist mm-dmm [-size 8] [-aux 0]          one distribution
//	lbcalc -json -dist conn-hidden-perm             machine-readable reports
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/lowerbound"

	// Clients self-register their distributions, obligations and bounds.
	_ "repro/internal/bounds"
	_ "repro/internal/connlb"
	_ "repro/internal/harddist"
	_ "repro/internal/misreduce"
	_ "repro/internal/proofcheck"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("values must be positive, got %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// usage enumerates the registry so `lbcalc -h` always reflects what is
// actually registered, with no hand-maintained list.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintln(w, "Usage of lbcalc:")
	flag.PrintDefaults()
	fmt.Fprintln(w, "\nregistered bounds:")
	for _, name := range lowerbound.BoundNames() {
		b, err := lowerbound.LookupBound(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-26s %s\n", name, b.Paper())
	}
	fmt.Fprintln(w, "\nregistered distributions:")
	for _, name := range lowerbound.DistributionNames() {
		d, err := lowerbound.LookupDistribution(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-26s %s (%d obligations)\n", name, d.Paper(), len(lowerbound.ObligationsFor(name)))
	}
}

// fatalUsage rejects bad flags: error to stderr, usage, exit 2.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lbcalc: "+format+"\n\n", args...)
	usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lbcalc: %v\n", err)
	os.Exit(1)
}

func main() {
	ms := flag.String("m", "25,100,400,1600", "constructive-family parameters")
	paperNs := flag.String("paper-n", "1000,10000,100000,1000000", "asymptotic-shape RS sizes N")
	seed := flag.Int64("seed", 42, "rng seed for obligation runs (≥ 0)")
	trials := flag.Int("trials", 3, "instances sampled per obligation run (≥ 1)")
	dist := flag.String("dist", "", "run the obligations of one registered distribution")
	size := flag.Int("size", 0, "size parameter for -dist (0 = the distribution's smoke spec)")
	aux := flag.Int("aux", 0, "aux parameter for -dist")
	obligations := flag.Bool("obligations", false, "run every registered distribution at its smoke spec")
	asJSON := flag.Bool("json", false, "emit obligation reports as JSON")
	list := flag.Bool("list", false, "list registered distributions, obligations and bounds")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() > 0 {
		fatalUsage("unexpected arguments: %v", flag.Args())
	}
	if *seed < 0 {
		fatalUsage("-seed must be ≥ 0, got %d", *seed)
	}
	if *trials < 1 {
		fatalUsage("-trials must be ≥ 1, got %d", *trials)
	}
	if *size < 0 {
		fatalUsage("-size must be ≥ 0, got %d", *size)
	}
	if *aux < 0 {
		fatalUsage("-aux must be ≥ 0, got %d", *aux)
	}

	switch {
	case *list:
		printRegistry()
	case *dist != "":
		runOne(*dist, *size, *aux, uint64(*seed), *trials, *asJSON)
	case *obligations:
		runAll(uint64(*seed), *trials, *asJSON)
	default:
		mList, err := parseInts(*ms)
		if err != nil {
			fatalUsage("-m: %v", err)
		}
		nList, err := parseInts(*paperNs)
		if err != nil {
			fatalUsage("-paper-n: %v", err)
		}
		printTables(mList, nList)
	}
}

func printRegistry() {
	fmt.Println("distributions:")
	for _, name := range lowerbound.DistributionNames() {
		d, err := lowerbound.LookupDistribution(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-26s %s\n", name, d.Paper())
	}
	fmt.Println("obligations:")
	for _, name := range lowerbound.ObligationNames() {
		o, err := lowerbound.LookupObligation(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-34s [%s, %s] %s\n", name, o.Distribution(), o.Severity(), o.Claim())
	}
	fmt.Println("bounds:")
	for _, name := range lowerbound.BoundNames() {
		b, err := lowerbound.LookupBound(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-26s %s\n", name, b.Paper())
	}
}

func emit(reports []*lowerbound.RunReport, asJSON bool) {
	if asJSON {
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", blob)
		return
	}
	for _, rep := range reports {
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func runOne(dist string, size, aux int, seed uint64, trials int, asJSON bool) {
	d, err := lowerbound.LookupDistribution(dist)
	if err != nil {
		fatal(err)
	}
	spec := d.SmokeSpec()
	if size > 0 {
		spec = lowerbound.Spec{Size: size, Aux: aux}
	}
	rep, err := lowerbound.Runner{Trials: trials}.Run(dist, spec, seed)
	if err != nil {
		fatal(err)
	}
	emit([]*lowerbound.RunReport{rep}, asJSON)
}

func runAll(seed uint64, trials int, asJSON bool) {
	reports, err := lowerbound.Runner{Trials: trials}.RunAll(seed)
	if err != nil {
		fatal(err)
	}
	emit(reports, asJSON)
}

// evalBound resolves and evaluates one registered bound.
func evalBound(name string, size int) lowerbound.BoundRow {
	b, err := lowerbound.LookupBound(name)
	if err != nil {
		fatal(err)
	}
	row, err := b.Evaluate(size)
	if err != nil {
		fatal(fmt.Errorf("%s at %d: %w", name, size, err))
	}
	return row
}

// printTables renders the analytic tables from the Bound registry. The
// output is byte-identical to the pre-refactor lbcalc (pinned in
// testdata/prerefactor_default.txt and diffed by scripts/lbcalc-smoke.sh).
func printTables(mList, nList []int) {
	fmt.Println("Theorem 1 counting bound, constructive (Behrend/greedy) family:")
	fmt.Printf("%8s %8s %6s %8s %10s %12s %12s\n", "m", "N", "r", "t=k", "n", "MM bits", "MIS bits")
	for _, m := range mList {
		mm := evalBound("mm/theorem-1", m)
		mis := evalBound("mis/theorem-2", m)
		fmt.Printf("%8d %8d %6d %8d %10d %12.3f %12.3f\n",
			m, int(mm.Params["N"]), int(mm.Params["r"]), int(mm.Params["t"]), int(mm.Params["n"]),
			mm.Bits, mis.Bits)
	}

	fmt.Println()
	fmt.Println("Theorem 1 at the paper's asymptotic shape (t = N/3, r = N/e^{c√log N}):")
	fmt.Printf("%10s %10s %12s %12s %10s\n", "N", "r", "n", "MM bits", "r/36")
	for _, n := range nList {
		row := evalBound("mm/theorem-1-asymptotic", n)
		fmt.Printf("%10d %10d %12d %12.3f %10.3f\n",
			int(row.Params["N"]), int(row.Params["r"]), int(row.Params["n"]), row.Bits, row.Params["r_over_36"])
	}
}

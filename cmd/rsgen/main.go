// Command rsgen constructs a Ruzsa–Szemerédi graph, verifies the
// induced-matching partition, and prints its parameters (optionally the
// full edge partition). With -sketch it additionally runs the two-round
// maximal-matching sketching protocol on the constructed graph through
// the concurrent execution engine and reports run-level metrics.
//
// Usage:
//
//	rsgen [-m 60] [-family behrend|disjoint] [-r R -t T] [-print]
//	      [-sketch] [-trials N] [-workers N] [-seed N] [-remote HOST:PORT]
//	      [-block=false]
//
// -workers sets the engine worker count (0 = GOMAXPROCS) and must be
// >= 0; the engine is bit-deterministic, so sketch output is
// byte-identical for any value — -workers 1 reproduces the same results
// as any parallel run.
//
// -block (default true) selects the columnar block execution path for
// protocols that support it; -block=false forces the per-vertex scalar
// path. Like -workers it never changes any output bit, only speed.
//
// -remote dispatches the sketch trials to a refereed daemon instead of
// running them in-process. The RS construction is a pure function of its
// parameters and trial coins are seed-derived, so the daemon reproduces
// exactly the runs a local -sketch would execute.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ap3"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/matchproto"
	"repro/internal/rng"
	"repro/internal/rsgraph"
	"repro/internal/wire"
)

func main() {
	m := flag.Int("m", 60, "behrend family parameter (t = m matchings)")
	family := flag.String("family", "behrend", "construction: behrend or disjoint")
	r := flag.Int("r", 4, "disjoint family: matching size")
	t := flag.Int("t", 8, "disjoint family: matching count")
	printEdges := flag.Bool("print", false, "print the edge partition")
	sketch := flag.Bool("sketch", false, "run the two-round MM sketch on the RS graph via the engine")
	trials := flag.Int("trials", 4, "sketch trials (each with fresh coins)")
	workers := flag.Int("workers", 0, "engine workers, >= 0 (0 = GOMAXPROCS); sketch output is byte-identical for any value")
	seed := flag.Uint64("seed", 42, "root seed for sketch trials")
	remote := flag.String("remote", "", "dispatch -sketch trials to a refereed daemon at this HOST:PORT")
	block := flag.Bool("block", true, "use columnar block execution where protocols support it; -block=false forces the per-vertex scalar path (output is byte-identical either way)")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "rsgen: -workers must be >= 0 (0 = GOMAXPROCS), got %d\n", *workers)
		os.Exit(2)
	}
	engine.SetBlockExecution(*block)

	var rs *rsgraph.RSGraph
	switch *family {
	case "behrend":
		var err error
		rs, err = rsgraph.BuildBehrend(*m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
			os.Exit(1)
		}
		set := ap3.Best(*m)
		fmt.Printf("3-AP-free set (|S| = %d): %v\n", len(set), set)
	case "disjoint":
		rs = rsgraph.DisjointMatchings(*r, *t)
	default:
		fmt.Fprintf(os.Stderr, "rsgen: unknown family %q\n", *family)
		os.Exit(2)
	}

	fmt.Printf("(r, t)-RS graph: r = %d, t = %d, N = %d, edges = %d\n",
		rs.R(), rs.T(), rs.N(), rs.G.M())
	if err := rsgraph.Verify(rs); err != nil {
		fmt.Fprintf(os.Stderr, "rsgen: VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("induced-matching partition verified")

	if *printEdges {
		for j, matching := range rs.Matchings {
			fmt.Printf("M_%d:", j)
			for _, e := range matching {
				fmt.Printf(" (%d,%d)", e.U, e.V)
			}
			fmt.Println()
		}
	}

	if *sketch {
		var err error
		if *remote != "" {
			gspec := wire.GraphSpec{Kind: "rs-behrend", M: *m}
			if *family == "disjoint" {
				gspec = wire.GraphSpec{Kind: "rs-disjoint", R: *r, T: *t}
			}
			err = runSketchRemote(*remote, gspec, *trials, *workers, *seed)
		} else {
			err = runSketch(rs, *trials, *workers, *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsgen: sketch: %v\n", err)
			os.Exit(1)
		}
	}
}

// runSketchRemote dispatches the sketch trials to a refereed daemon as
// one batch of RunSpecs. Each trial's coins are expressed as the derived
// node's seed — the same derivation runSketch uses locally — so the
// daemon executes bit-identical runs.
func runSketchRemote(remote string, gspec wire.GraphSpec, trials, workers int, seed uint64) error {
	if trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", trials)
	}
	base := remote
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := client.New(client.Config{BaseURL: base})
	ctx := context.Background()
	if _, err := c.Health(ctx); err != nil {
		return err
	}
	coins := rng.NewPublicCoins(seed).Derive("rsgen-mm")
	specs := make([]wire.RunSpec, trials)
	for i := range specs {
		specs[i] = wire.RunSpec{
			Label:    fmt.Sprintf("mm/trial%d", i),
			Protocol: "mm-tworound",
			Graph:    gspec,
			Seed:     coins.DeriveIndex(i).Seed(),
			Workers:  workers,
		}
	}
	items, err := c.RunBatch(ctx, specs)
	if err != nil {
		return err
	}
	maximal := 0
	var totalBits, broadcasts int64
	maxMsg := 0
	for i := range items {
		if items[i].Err != "" {
			return fmt.Errorf("%s: %s", items[i].Label, items[i].Err)
		}
		if items[i].Outcome.Valid {
			maximal++
		}
		totalBits += items[i].Stats.TotalBits
		broadcasts += int64(items[i].Stats.Broadcasts)
		if items[i].Stats.MaxMessageBits > maxMsg {
			maxMsg = items[i].Stats.MaxMessageBits
		}
	}
	fmt.Printf("two-round MM sketch (remote %s): %d/%d maximal, max message = %d bits, total = %d bits over %d broadcasts\n",
		remote, maximal, len(items), maxMsg, totalBits, broadcasts)
	return engine.WriteStats(os.Stdout, &items[0].Stats)
}

// runSketch executes `trials` independent two-round MM runs on the RS
// graph as one engine batch and prints per-batch and first-run metrics.
func runSketch(rs *rsgraph.RSGraph, trials, workers int, seed uint64) error {
	if trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", trials)
	}
	coins := rng.NewPublicCoins(seed)
	jobs := make([]engine.Job[[]graph.Edge], trials)
	for i := range jobs {
		jobs[i] = engine.Job[[]graph.Edge]{
			Label:    fmt.Sprintf("mm/trial%d", i),
			Protocol: matchproto.NewTwoRound(),
			Graph:    rs.G,
			Coins:    coins.Derive("rsgen-mm").DeriveIndex(i),
		}
	}
	eng := &engine.Engine{Workers: workers}
	results, err := engine.RunBatch(context.Background(), eng, jobs)
	if err != nil {
		return err
	}
	maximal := 0
	for _, jr := range results {
		if jr.Err != nil {
			return fmt.Errorf("%s: %w", jr.Label, jr.Err)
		}
		if graph.IsMaximalMatching(rs.G, jr.Result.Output) {
			maximal++
		}
	}
	sum := engine.Summarize(results)
	fmt.Printf("two-round MM sketch: %d/%d maximal, max message = %d bits, total = %d bits over %d broadcasts\n",
		maximal, sum.Jobs, sum.MaxMessageBits, sum.TotalBits, sum.Broadcasts)
	return engine.WriteStats(os.Stdout, &results[0].Result.Stats)
}

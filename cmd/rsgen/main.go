// Command rsgen constructs a Ruzsa–Szemerédi graph, verifies the
// induced-matching partition, and prints its parameters (optionally the
// full edge partition).
//
// Usage:
//
//	rsgen [-m 60] [-family behrend|disjoint] [-r R -t T] [-print]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ap3"
	"repro/internal/rsgraph"
)

func main() {
	m := flag.Int("m", 60, "behrend family parameter (t = m matchings)")
	family := flag.String("family", "behrend", "construction: behrend or disjoint")
	r := flag.Int("r", 4, "disjoint family: matching size")
	t := flag.Int("t", 8, "disjoint family: matching count")
	printEdges := flag.Bool("print", false, "print the edge partition")
	flag.Parse()

	var rs *rsgraph.RSGraph
	switch *family {
	case "behrend":
		var err error
		rs, err = rsgraph.BuildBehrend(*m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
			os.Exit(1)
		}
		set := ap3.Best(*m)
		fmt.Printf("3-AP-free set (|S| = %d): %v\n", len(set), set)
	case "disjoint":
		rs = rsgraph.DisjointMatchings(*r, *t)
	default:
		fmt.Fprintf(os.Stderr, "rsgen: unknown family %q\n", *family)
		os.Exit(2)
	}

	fmt.Printf("(r, t)-RS graph: r = %d, t = %d, N = %d, edges = %d\n",
		rs.R(), rs.T(), rs.N(), rs.G.M())
	if err := rsgraph.Verify(rs); err != nil {
		fmt.Fprintf(os.Stderr, "rsgen: VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("induced-matching partition verified")

	if *printEdges {
		for j, matching := range rs.Matchings {
			fmt.Printf("M_%d:", j)
			for _, e := range matching {
				fmt.Printf(" (%d,%d)", e.U, e.V)
			}
			fmt.Println()
		}
	}
}

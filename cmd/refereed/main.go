// Command refereed serves the sketching referee as a network daemon.
// Clients (cmd/sketchlab -remote, cmd/rsgen -remote, internal/client)
// POST wire.RunSpec frames to /v1/run and get the full run report —
// stats, outcome, sealed transcript — back. The daemon executes through
// the same engine path as a local run, so the transcript it returns is
// byte-identical to what the client would have computed itself; it adds
// only operational concerns (concurrency limit, timeouts, graceful
// shutdown, request logs).
//
// Usage:
//
//	refereed [-addr 127.0.0.1:8377] [-max-concurrent N] [-timeout D] [-grace D]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// closes immediately, in-flight runs get -grace to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneous run executions (0 = GOMAXPROCS); excess requests queue")
	timeout := flag.Duration("timeout", time.Minute, "per-request execution budget")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace for in-flight requests")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refereed: %v\n", err)
		os.Exit(1)
	}
	log.Info("listening", slog.String("addr", ln.Addr().String()))
	s := server.New(server.Config{MaxConcurrent: *maxConcurrent, Timeout: *timeout, Logger: log})
	if err := s.Serve(ctx, ln, *grace); err != nil {
		fmt.Fprintf(os.Stderr, "refereed: %v\n", err)
		os.Exit(1)
	}
}

// Command refereed serves the sketching referee as a network daemon.
// Clients (cmd/sketchlab -remote, cmd/rsgen -remote, internal/client)
// POST wire.RunSpec frames to /v1/run and get the full run report —
// stats, outcome, sealed transcript — back. The daemon executes through
// the same engine path as a local run, so the transcript it returns is
// byte-identical to what the client would have computed itself; it adds
// only operational concerns (concurrency limit, timeouts, result cache,
// graceful shutdown, request logs).
//
// Usage:
//
//	refereed [-addr 127.0.0.1:8377] [-max-concurrent N] [-timeout D]
//	         [-queue-timeout D] [-cache-bytes N] [-grace D]
//
// With -coordinator, the same binary fronts a cluster instead of an
// engine: it consistent-hash-shards specs across the listed refereed
// backends, health-checks them, and fails over on backend death. The
// coordinator serves the identical /v1 surface, so clients cannot tell
// it from a single daemon:
//
//	refereed -coordinator host1:8377,host2:8377,host3:8377 \
//	         [-addr 127.0.0.1:8380] [-health-interval D] [-grace D]
//
// Either mode shuts down gracefully on SIGINT/SIGTERM: the listener
// closes immediately, in-flight runs get -grace to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneous run executions (0 = GOMAXPROCS); excess requests queue")
	timeout := flag.Duration("timeout", time.Minute, "per-request execution budget")
	queueTimeout := flag.Duration("queue-timeout", 0, "max wait for an execution slot before shedding 429 (0 = wait as long as the request allows)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache budget in bytes (0 disables memoization)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown grace for in-flight requests")
	coordinator := flag.String("coordinator", "", "run as cluster coordinator over these comma-separated refereed backends instead of serving an engine")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "coordinator backend health probe period")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refereed: %v\n", err)
		os.Exit(1)
	}

	if *coordinator != "" {
		var backends []string
		for _, b := range strings.Split(*coordinator, ",") {
			if b = strings.TrimSpace(b); b != "" {
				backends = append(backends, b)
			}
		}
		co, err := cluster.New(cluster.Config{
			Backends:       backends,
			HealthInterval: *healthInterval,
			Timeout:        *timeout,
			Logger:         log,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "refereed: %v\n", err)
			os.Exit(1)
		}
		log.Info("coordinating", slog.String("addr", ln.Addr().String()), slog.Int("backends", len(backends)))
		if err := co.Serve(ctx, ln, *grace); err != nil {
			fmt.Fprintf(os.Stderr, "refereed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	log.Info("listening", slog.String("addr", ln.Addr().String()))
	s := server.New(server.Config{
		MaxConcurrent: *maxConcurrent,
		Timeout:       *timeout,
		QueueTimeout:  *queueTimeout,
		CacheBytes:    *cacheBytes,
		Logger:        log,
	})
	if err := s.Serve(ctx, ln, *grace); err != nil {
		fmt.Fprintf(os.Stderr, "refereed: %v\n", err)
		os.Exit(1)
	}
}

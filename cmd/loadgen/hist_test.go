package main

import (
	"math"
	"testing"
)

// TestBucketContinuity: bucket indices are monotone in the value and
// contiguous — no value falls between buckets.
func TestBucketContinuity(t *testing.T) {
	prev := bucketOf(1)
	for v := int64(2); v < 1<<20; v++ {
		i := bucketOf(v)
		if i < prev || i > prev+1 {
			t.Fatalf("bucketOf(%d)=%d after bucketOf(%d)=%d; indices must step by 0 or 1", v, i, v-1, prev)
		}
		prev = i
	}
}

// TestBucketRelativeError: the bucket midpoint is within ~2^-subBits of
// any value mapping to it — the HDR resolution bound.
func TestBucketRelativeError(t *testing.T) {
	for _, v := range []int64{1, 17, 100, 999, 12_345, 1_000_000, 250_000_000, 60_000_000_000} {
		mid := bucketMid(bucketOf(v))
		relErr := math.Abs(float64(mid-v)) / float64(v)
		if relErr > 1.0/float64(int64(1)<<subBits)+1e-9 {
			t.Fatalf("value %d -> midpoint %d, relative error %.4f beyond bound", v, mid, relErr)
		}
	}
}

// TestPercentiles: a known distribution yields the right quantiles
// within bucket resolution.
func TestPercentiles(t *testing.T) {
	var h hist
	for v := int64(1); v <= 10_000; v++ {
		h.record(v * 1000) // 1µs .. 10ms, uniform
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 5_000_000}, {0.95, 9_500_000}, {0.99, 9_900_000}}
	for _, c := range checks {
		got := h.percentile(c.q)
		relErr := math.Abs(float64(got-c.want)) / float64(c.want)
		if relErr > 0.05 {
			t.Fatalf("p%.0f = %d, want ~%d (err %.3f)", c.q*100, got, c.want, relErr)
		}
	}
	if h.percentile(1.0) != h.max {
		t.Fatalf("p100 %d != max %d", h.percentile(1.0), h.max)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h hist
	if h.percentile(0.99) != 0 {
		t.Fatal("empty histogram must report 0")
	}
}

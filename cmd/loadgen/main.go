// Command loadgen is the open-loop load generator for the referee
// service: it fires wire.RunSpec requests at a refereed daemon or a
// cluster coordinator with Poisson arrivals at a target rate, measures
// per-request latency into an HDR-style histogram, and reports
// p50/p95/p99/max plus an error-rate SLO verdict as JSON.
//
// Open-loop means arrivals are scheduled by the clock, not by
// completions: a slow server does not throttle the generator, it just
// accumulates in-flight requests — exactly the regime where queueing
// delay and load shedding (429 + Retry-After) become visible. The
// arrival process and the spec mix both derive from -seed, so a load
// profile is reproducible run to run.
//
// The spec mix cycles wire.SmokeSpecs, so after the first pass a
// caching daemon answers from memory — the cache section of the report
// (sampled from GET /v1/stats before and after) shows the hit rate the
// traffic achieved. -unique perturbs every spec's graph seed to defeat
// memoization and measure raw execution instead.
//
// Usage:
//
//	loadgen [-target http://127.0.0.1:8377] [-rps 50] [-duration 10s]
//	        [-seed 1] [-unique] [-slo-p99 D] [-slo-errors 0.01] [-strict]
//	        [-o report.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/rng"
	"repro/internal/wire"
)

// report is the JSON document loadgen emits; scripts/bench-json.sh
// folds it into BENCH_NNNN.json.
type report struct {
	Target          string  `json:"target"`
	DurationSeconds float64 `json:"duration_seconds"`
	OfferedRPS      float64 `json:"offered_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	Sent            int64   `json:"sent"`
	OK              int64   `json:"ok"`
	Errors          int64   `json:"errors"`
	ErrorRate       float64 `json:"error_rate"`
	LatencyMS       latency `json:"latency_ms"`
	Cache           *cache  `json:"cache,omitempty"`
	SLO             slo     `json:"slo"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// cache is the hit/miss delta attributable to this load run.
type cache struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type slo struct {
	P99Budget string  `json:"p99_budget,omitempty"`
	P99OK     bool    `json:"p99_ok"`
	ErrBudget float64 `json:"error_budget"`
	ErrRateOK bool    `json:"error_rate_ok"`
	OK        bool    `json:"ok"`
}

type result struct {
	ns  int64
	err error
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8377", "refereed daemon or coordinator base URL")
	rps := flag.Float64("rps", 50, "target arrival rate (Poisson)")
	duration := flag.Duration("duration", 10*time.Second, "generation window")
	seed := flag.Uint64("seed", 1, "seed for arrivals and spec mix")
	unique := flag.Bool("unique", false, "perturb each spec's graph seed to defeat the result cache")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request budget")
	sloP99 := flag.Duration("slo-p99", 0, "p99 latency budget (0 = not checked)")
	sloErr := flag.Float64("slo-errors", 0.01, "error-rate budget")
	strict := flag.Bool("strict", false, "exit nonzero when the SLO verdict is a fail")
	out := flag.String("o", "", "write the JSON report here instead of stdout")
	flag.Parse()

	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -rps and -duration must be positive")
		os.Exit(2)
	}

	// Measurement traffic is never retried: a retry would fold queueing
	// and backoff into one latency sample and hide shed load.
	c := client.New(client.Config{BaseURL: *target, Retries: -1})
	ctx := context.Background()
	if _, err := c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: target not healthy: %v\n", err)
		os.Exit(1)
	}
	statsBefore, statsErr := c.Stats(ctx)

	src := rng.NewSource(*seed)
	specs := wire.SmokeSpecs(0)
	results := make(chan result, 1024)
	var wg sync.WaitGroup
	var sent int64

	start := time.Now()
	next := start
	for {
		// Exponential inter-arrival times make the arrival process
		// Poisson at -rps; scheduling against absolute timestamps keeps
		// the loop open-loop even when individual requests are slow.
		next = next.Add(time.Duration(-math.Log(1-src.Float64()) / *rps * float64(time.Second)))
		if next.Sub(start) > *duration {
			break
		}
		time.Sleep(time.Until(next))
		spec := specs[src.Intn(len(specs))]
		if *unique {
			spec.Graph.Seed = src.Uint64()
			spec.Seed = src.Uint64()
		}
		sent++
		wg.Add(1)
		go func(spec wire.RunSpec) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, *reqTimeout)
			defer cancel()
			t0 := time.Now()
			_, err := c.Run(rctx, spec)
			results <- result{ns: time.Since(t0).Nanoseconds(), err: err}
		}(spec)
	}
	go func() { wg.Wait(); close(results) }()

	var h hist
	var okCount, errCount int64
	for r := range results {
		if r.err != nil {
			errCount++
			continue
		}
		okCount++
		h.record(r.ns)
	}
	elapsed := time.Since(start)

	rep := report{
		Target:          *target,
		DurationSeconds: elapsed.Seconds(),
		OfferedRPS:      *rps,
		AchievedRPS:     float64(okCount) / elapsed.Seconds(),
		Sent:            sent,
		OK:              okCount,
		Errors:          errCount,
		LatencyMS: latency{
			P50: float64(h.percentile(0.50)) / 1e6,
			P95: float64(h.percentile(0.95)) / 1e6,
			P99: float64(h.percentile(0.99)) / 1e6,
			Max: float64(h.max) / 1e6,
		},
	}
	if sent > 0 {
		rep.ErrorRate = float64(errCount) / float64(sent)
	}
	if statsErr == nil && statsBefore.Cache.Enabled {
		if after, err := c.Stats(ctx); err == nil {
			d := &cache{
				Hits:   after.Cache.Hits - statsBefore.Cache.Hits,
				Misses: after.Cache.Misses - statsBefore.Cache.Misses,
			}
			if total := d.Hits + d.Misses; total > 0 {
				d.HitRate = float64(d.Hits) / float64(total)
			}
			rep.Cache = d
		}
	}
	rep.SLO = slo{
		ErrBudget: *sloErr,
		ErrRateOK: rep.ErrorRate <= *sloErr,
		P99OK:     true,
	}
	if *sloP99 > 0 {
		rep.SLO.P99Budget = sloP99.String()
		rep.SLO.P99OK = rep.LatencyMS.P99 <= float64(sloP99.Milliseconds())
	}
	rep.SLO.OK = rep.SLO.P99OK && rep.SLO.ErrRateOK

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: report written to %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}
	if *strict && !rep.SLO.OK {
		os.Exit(1)
	}
}

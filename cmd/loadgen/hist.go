package main

import "math/bits"

// hist is an HDR-style latency histogram: geometric buckets, each
// octave split into 2^subBits linear sub-buckets, so the relative
// quantization error is bounded by 2^-subBits (~3%) at every scale —
// the property that lets one fixed-size table cover microseconds to
// minutes without losing tail resolution. Values are nanoseconds.
type hist struct {
	counts []int64
	total  int64
	max    int64
}

const subBits = 5 // 32 sub-buckets per octave

// bucketOf maps a value to its bucket index. Values below 2^subBits
// index exactly; above, the index is (octave, sub-bucket) packed so
// consecutive indices cover contiguous ranges.
func bucketOf(v int64) int {
	if v < 1 {
		v = 1
	}
	u := uint64(v)
	m := bits.Len64(u) - 1 // highest set bit position
	if m < subBits {
		return int(u)
	}
	o := m - subBits + 1
	sub := int(u>>(m-subBits)) & (1<<subBits - 1)
	return o<<subBits + sub
}

// bucketMid returns a representative value (range midpoint) for index.
func bucketMid(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	o := i >> subBits
	sub := int64(i & (1<<subBits - 1))
	lower := (int64(1)<<subBits + sub) << (o - 1)
	width := int64(1) << (o - 1)
	return lower + width/2
}

func (h *hist) record(v int64) {
	i := bucketOf(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// percentile returns the value at quantile q in [0,1]. The exact
// maximum is reported for the top sample instead of its bucket
// midpoint, so p100 (and a p99 that lands on the last sample) never
// exceeds an observed latency.
func (h *hist) percentile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank >= h.total {
		return h.max
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			mid := bucketMid(i)
			if mid > h.max {
				return h.max
			}
			return mid
		}
	}
	return h.max
}

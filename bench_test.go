package repro_test

// One benchmark per experiment of DESIGN.md §3. Each regenerates the
// corresponding EXPERIMENTS.md table at small scale (use
// cmd/sketchlab -scale full for the recorded full-scale numbers) and
// reports throughput so regressions in the underlying machinery surface
// here.
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"io"
	"testing"

	"repro/internal/agm"
	"repro/internal/cclique"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func benchExperiment(b *testing.B, run experiments.Runner) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := run(experiments.Small, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1RSGraphConstruction(b *testing.B) {
	benchExperiment(b, experiments.E1RSConstruction)
}

func BenchmarkE2HardDistribution(b *testing.B) {
	benchExperiment(b, experiments.E2HardDistribution)
}

func BenchmarkE3Claim31(b *testing.B) {
	benchExperiment(b, experiments.E3Claim31)
}

func BenchmarkE4InformationChain(b *testing.B) {
	benchExperiment(b, experiments.E4InformationChain)
}

func BenchmarkE5MatchingLowerBound(b *testing.B) {
	benchExperiment(b, experiments.E5MatchingLowerBound)
}

func BenchmarkE6MISReduction(b *testing.B) {
	benchExperiment(b, experiments.E6MISReduction)
}

func BenchmarkE7MISLowerBound(b *testing.B) {
	benchExperiment(b, experiments.E7MISLowerBound)
}

func BenchmarkE8AGMSpanningForest(b *testing.B) {
	benchExperiment(b, experiments.E8AGMSpanningForest)
}

func BenchmarkE9BridgeFinding(b *testing.B) {
	benchExperiment(b, experiments.E9BridgeFinding)
}

func BenchmarkE10Coloring(b *testing.B) {
	benchExperiment(b, experiments.E10Coloring)
}

func BenchmarkE11TwoRound(b *testing.B) {
	benchExperiment(b, experiments.E11TwoRound)
}

func BenchmarkE12BCCEquivalence(b *testing.B) {
	benchExperiment(b, experiments.E12BCCEquivalence)
}

func BenchmarkE13Certificates(b *testing.B) {
	benchExperiment(b, experiments.E13Certificates)
}

func BenchmarkE14BudgetScaling(b *testing.B) {
	benchExperiment(b, experiments.E14BudgetScaling)
}

func BenchmarkE15RandomnessHierarchy(b *testing.B) {
	benchExperiment(b, experiments.E15RandomnessHierarchy)
}

func BenchmarkE16MSTEstimator(b *testing.B) {
	benchExperiment(b, experiments.E16MSTEstimator)
}

func BenchmarkE17CutSparsifier(b *testing.B) {
	benchExperiment(b, experiments.E17CutSparsifier)
}

func BenchmarkE18DegeneracyDensest(b *testing.B) {
	benchExperiment(b, experiments.E18DegeneracyDensest)
}

func BenchmarkE19TriangleCounting(b *testing.B) {
	benchExperiment(b, experiments.E19TriangleCounting)
}

func BenchmarkE20ResilienceSweep(b *testing.B) {
	benchExperiment(b, experiments.E20ResilienceSweep)
}

func BenchmarkE60ConnectivityLowerBound(b *testing.B) {
	benchExperiment(b, experiments.E60ConnectivityLowerBound)
}

// Engine benchmarks: the broadcast phase of the AGM spanning-forest
// sketch (per-vertex work is the protocol's real hot path; Decode is
// referee-side and inherently sequential) at n ∈ {1k, 10k}, sequential
// (1 worker) vs parallel (GOMAXPROCS workers). The engine's determinism
// contract makes the two transcripts bit-identical, so this measures pure
// scheduling win. Numbers are recorded in EXPERIMENTS.md § Engine.
func benchEngineBroadcast(b *testing.B, n, workers int) {
	benchEngineBroadcastMode(b, n, workers, false)
}

// benchEngineBroadcastMode additionally selects the execution path:
// disableBlock forces the per-vertex scalar loop via Engine.DisableBlock,
// so the block-vs-scalar pairs below measure the columnar win on
// bit-identical transcripts. The unsuffixed Sequential/Parallel
// benchmarks run whatever the default path is (block, since PR 8) —
// they are the headline numbers recorded in EXPERIMENTS.md § Engine.
func benchEngineBroadcastMode(b *testing.B, n, workers int, disableBlock bool) {
	b.Helper()
	g := gen.Gnp(n, 8/float64(n), rng.NewSource(7))
	p := &cclique.OneRound[[]graph.Edge]{P: agm.NewSpanningForest(agm.Config{})}
	eng := &engine.Engine{Workers: workers, DisableBlock: disableBlock}
	coins := rng.NewPublicCoins(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Execute(context.Background(), p, g, coins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSequentialN1k(b *testing.B) { benchEngineBroadcast(b, 1000, 1) }

func BenchmarkEngineParallelN1k(b *testing.B) { benchEngineBroadcast(b, 1000, 0) }

func BenchmarkEngineSequentialN10k(b *testing.B) { benchEngineBroadcast(b, 10000, 1) }

func BenchmarkEngineParallelN10k(b *testing.B) { benchEngineBroadcast(b, 10000, 0) }

// Block-vs-scalar pairs: identical load and transcripts, only the
// execution path differs. The bench guard (scripts/bench-guard.sh, run
// by make check) compares the N1k pair's ratio against bench/baseline.txt
// and fails on a >10% relative regression of the block path.
func BenchmarkEngineBlockN1k(b *testing.B) { benchEngineBroadcastMode(b, 1000, 1, false) }

func BenchmarkEngineScalarN1k(b *testing.B) { benchEngineBroadcastMode(b, 1000, 1, true) }

func BenchmarkEngineBlockN10k(b *testing.B) { benchEngineBroadcastMode(b, 10000, 1, false) }

func BenchmarkEngineScalarN10k(b *testing.B) { benchEngineBroadcastMode(b, 10000, 1, true) }

package repro_test

// One benchmark per experiment of DESIGN.md §3. Each regenerates the
// corresponding EXPERIMENTS.md table at small scale (use
// cmd/sketchlab -scale full for the recorded full-scale numbers) and
// reports throughput so regressions in the underlying machinery surface
// here.
//
// Run: go test -bench=. -benchmem

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, run experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := run(experiments.Small, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1RSGraphConstruction(b *testing.B) {
	benchExperiment(b, experiments.E1RSConstruction)
}

func BenchmarkE2HardDistribution(b *testing.B) {
	benchExperiment(b, experiments.E2HardDistribution)
}

func BenchmarkE3Claim31(b *testing.B) {
	benchExperiment(b, experiments.E3Claim31)
}

func BenchmarkE4InformationChain(b *testing.B) {
	benchExperiment(b, experiments.E4InformationChain)
}

func BenchmarkE5MatchingLowerBound(b *testing.B) {
	benchExperiment(b, experiments.E5MatchingLowerBound)
}

func BenchmarkE6MISReduction(b *testing.B) {
	benchExperiment(b, experiments.E6MISReduction)
}

func BenchmarkE7MISLowerBound(b *testing.B) {
	benchExperiment(b, experiments.E7MISLowerBound)
}

func BenchmarkE8AGMSpanningForest(b *testing.B) {
	benchExperiment(b, experiments.E8AGMSpanningForest)
}

func BenchmarkE9BridgeFinding(b *testing.B) {
	benchExperiment(b, experiments.E9BridgeFinding)
}

func BenchmarkE10Coloring(b *testing.B) {
	benchExperiment(b, experiments.E10Coloring)
}

func BenchmarkE11TwoRound(b *testing.B) {
	benchExperiment(b, experiments.E11TwoRound)
}

func BenchmarkE12BCCEquivalence(b *testing.B) {
	benchExperiment(b, experiments.E12BCCEquivalence)
}

func BenchmarkE13Certificates(b *testing.B) {
	benchExperiment(b, experiments.E13Certificates)
}

func BenchmarkE14BudgetScaling(b *testing.B) {
	benchExperiment(b, experiments.E14BudgetScaling)
}

func BenchmarkE15RandomnessHierarchy(b *testing.B) {
	benchExperiment(b, experiments.E15RandomnessHierarchy)
}

func BenchmarkE16MSTEstimator(b *testing.B) {
	benchExperiment(b, experiments.E16MSTEstimator)
}

func BenchmarkE17CutSparsifier(b *testing.B) {
	benchExperiment(b, experiments.E17CutSparsifier)
}

func BenchmarkE18DegeneracyDensest(b *testing.B) {
	benchExperiment(b, experiments.E18DegeneracyDensest)
}

func BenchmarkE19TriangleCounting(b *testing.B) {
	benchExperiment(b, experiments.E19TriangleCounting)
}

// Information chain walkthrough: the paper's Section 3.2 argument,
// executed exactly on a micro-instance of the hard distribution.
//
// The micro family is small enough to enumerate the full joint
// distribution of (J, survival bits, player messages), so every quantity
// in Lemmas 3.3–3.5 is computed to machine precision — including the
// protocols that meet the bounds with equality.
//
// Run with: go run ./examples/informationchain
package main

import (
	"fmt"
	"log"

	"repro/internal/harddist"
	"repro/internal/proofcheck"
	"repro/internal/rsgraph"
)

func main() {
	// Base: trivial (r=1, t=2)-RS graph, k=2 copies, drop 1/2.
	// Randomness: J (1 bit) + 4 survival bits → 32 outcomes total.
	rs := rsgraph.DisjointMatchings(1, 2)
	params := harddist.Params{RS: rs, K: 2, DropProb: 0.5}
	sigma := make([]int, params.N())
	for i := range sigma {
		sigma[i] = i
	}
	cfg := proofcheck.Config{Params: params, Sigma: sigma}

	fmt.Printf("micro D_MM: r=%d t=%d k=%d, n=%d, %d enumerable outcomes\n\n",
		rs.R(), rs.T(), params.K, params.N(), rs.T()*(1<<uint(params.K*rs.T()*rs.R())))

	for _, p := range proofcheck.Portfolio() {
		rep, err := proofcheck.VerifyChain(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("protocol %-12s  (max bits: public=%d unique=%d)\n",
			rep.Protocol, rep.MaxPublicBits, rep.MaxUniqueBits)
		fmt.Printf("  I(M_J;Π|Σ,J) = %.4f   of kr = %.0f\n", rep.ITotal, rep.KR)
		fmt.Printf("  lemma 3.3:  H(M|Π,Σ,J) = %.4f  ≤  1 + Perr·kr + (kr−E|MU|) = %.4f   [%v]\n",
			rep.Lemma33.LHS, rep.Lemma33.RHS, rep.Lemma33.Holds)
		fmt.Printf("  lemma 3.4:  I ≤ H(Π(P)) + ΣI(M_i;Π(U_i)|Σ,J) = %.4f + %.4f   [%v]\n",
			rep.HPiP, rep.Lemma34.RHS-rep.HPiP, rep.Lemma34.Holds)
		for i, l := range rep.Lemma35 {
			tight := ""
			if l.Tight {
				tight = "  ← equality: the 1/t direct-sum factor is sharp"
			}
			fmt.Printf("  lemma 3.5:  I(M_%d;Π(U_%d)|Σ,J) = %.4f  ≤  H(Π(U_%d))/t = %.4f   [%v]%s\n",
				i+1, i+1, l.LHS, i+1, l.RHS, l.Holds, tight)
		}
		fmt.Printf("  counting :  I ≤ |P|·bP + kN·bU/t = %.4f   [%v]\n\n",
			rep.Counting.RHS, rep.Counting.Holds)
	}

	fmt.Println("the chain closes Theorem 1: any protocol achieving I ≈ kr must pay")
	fmt.Println("b = Ω(kr / (|P| + kN/t)) = Ω(r) ≈ Ω(√n / e^Θ(√log n)) bits per player.")
}

// Connectivity demo: the wider AGM toolbox the paper's introduction
// cites — k-edge-connectivity certificates peeled from a single round of
// sketches, and the same sketches maintained under a dynamic edge stream.
//
// Run with: go run ./examples/connectivity
package main

import (
	"fmt"
	"log"

	"repro/internal/agm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	src := rng.NewSource(31)
	coins := rng.NewPublicCoins(32)

	// Part 1: k-edge-connectivity certificate. Two dense blobs joined by
	// a 2-edge cut; the k=3 certificate must keep that cut at exactly 2.
	b := graph.NewBuilder(20)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if src.Float64() < 0.7 {
				b.AddEdge(i, j)
				b.AddEdge(10+i, 10+j)
			}
		}
	}
	b.AddEdge(0, 10)
	b.AddEdge(1, 11)
	g := b.Build()

	k := 3
	res, err := core.Run[[]graph.Edge](agm.NewSkeleton(k, agm.Config{}), g, coins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d with a hidden 2-edge cut\n", g.N(), g.M())
	fmt.Printf("k=%d certificate: %d edges (≤ k(n-1) = %d)\n", k, len(res.Output), k*(g.N()-1))
	if err := agm.VerifyCertificate(g, res.Output, k); err != nil {
		log.Fatalf("certificate invalid: %v", err)
	}
	side := make([]bool, 20)
	for v := 10; v < 20; v++ {
		side[v] = true
	}
	crossing := 0
	for _, e := range res.Output {
		if side[e.U] != side[e.V] {
			crossing++
		}
	}
	fmt.Printf("certificate keeps the 2-edge cut at %d crossing edges — the referee\n", crossing)
	fmt.Println("can certify the graph is NOT 3-edge-connected from sketches alone.")

	// Part 2: dynamic stream. Same sketches, maintained incrementally.
	fmt.Println()
	n := 40
	s := agm.NewStreamSketcher(n, agm.Config{}, coins.Derive("stream"))
	full := gen.Gnp(n, 0.2, src)
	for _, e := range full.Edges() {
		if err := s.Insert(e.U, e.V); err != nil {
			log.Fatal(err)
		}
	}
	var kept []graph.Edge
	for i, e := range full.Edges() {
		if i%3 == 0 {
			if err := s.Delete(e.U, e.V); err != nil {
				log.Fatal(err)
			}
		} else {
			kept = append(kept, e)
		}
	}
	fmt.Printf("stream: %d inserts, %d deletes, %d edges remain\n",
		full.M(), full.M()-len(kept), s.Edges())
	forest, err := s.SpanningForest(coins.Derive("stream"))
	if err != nil {
		log.Fatal(err)
	}
	final := graph.FromEdges(n, kept)
	fmt.Printf("forest decoded from stream-maintained sketches: %d edges, valid = %v\n",
		len(forest), graph.IsSpanningForest(final, forest))
	fmt.Println()
	fmt.Println("linearity means deletions are as cheap as insertions — the dynamic")
	fmt.Println("graph stream connection the paper's related-work section points to.")
}

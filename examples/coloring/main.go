// Coloring demo: (Δ+1)-vertex coloring with palette sparsification
// [ACK19] — the symmetry-breaking problem the paper singles out as
// polylog-sketchable, in contrast to maximal matching and MIS.
//
// Run with: go run ./examples/coloring
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	src := rng.NewSource(21)
	g := gen.Gnp(300, 0.4, src)
	delta := g.MaxDegree()
	fmt.Printf("graph: n=%d, m=%d, Δ=%d (palette size %d)\n", g.N(), g.M(), delta, delta+1)

	listSize := int(math.Ceil(6 * math.Log(float64(g.N())+1)))
	fmt.Printf("every vertex publicly samples a list of %d of the %d colors\n", listSize, delta+1)

	protocol := coloring.New(coloring.Config{MaxDegree: delta})
	res, err := core.Run[[]int](protocol, g, rng.NewPublicCoins(22))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max sketch: %d bits/vertex (full neighborhood would be ~%d bits)\n",
		res.MaxSketchBits, delta*int(math.Ceil(math.Log2(float64(g.N())))))
	if graph.IsProperColoring(g, res.Output, delta+1) {
		fmt.Println("verified: proper (Δ+1)-coloring, every vertex colored from its sampled list")
	} else {
		fmt.Println("verification FAILED (protocol errs with small probability; rerun)")
	}

	used := make(map[int]bool)
	for _, c := range res.Output {
		used[c] = true
	}
	fmt.Printf("colors actually used: %d of %d\n", len(used), delta+1)
	fmt.Println()
	fmt.Println("the paper: this problem has O(log³n)-bit sketches, while maximal")
	fmt.Println("matching and MIS provably need Ω(√n / e^Θ(√log n)) — Theorems 1-2.")
}

// Quickstart: the distributed sketching model in one page.
//
// Every vertex of a random graph sends one small sketch to a referee, who
// reconstructs a spanning forest — the AGM result that motivates the
// paper's question of whether maximal matching / MIS can be sketched too
// (the paper proves they cannot, below Ω(√n)).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/agm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	// The input graph: G(n, p) with a comfortably connected regime.
	src := rng.NewSource(7)
	g := gen.Gnp(200, 0.05, src)
	fmt.Printf("input graph: n=%d, m=%d edges\n", g.N(), g.M())

	// Public coins shared by all players and the referee.
	coins := rng.NewPublicCoins(2020)

	// One round: every vertex sketches its incidence vector; the referee
	// runs Borůvka over merged sketches.
	protocol := agm.NewSpanningForest(agm.Config{})
	res, err := core.Run[[]graph.Edge](protocol, g, coins)
	if err != nil {
		log.Fatalf("protocol failed: %v", err)
	}

	fmt.Printf("forest edges recovered: %d\n", len(res.Output))
	fmt.Printf("max sketch size:        %d bits per vertex\n", res.MaxSketchBits)
	fmt.Printf("trivial sketch size:    %d bits per vertex (send everything)\n", g.N())
	if graph.IsSpanningForest(g, res.Output) {
		fmt.Println("verified: output is a spanning forest of G")
	} else {
		fmt.Println("verification FAILED (the protocol errs with small probability; rerun)")
	}

	// The same model cannot do maximal matching this cheaply: the paper
	// proves any protocol needs Ω(√n / e^Θ(√log n)) bits per vertex.
	fmt.Println()
	fmt.Println("contrast: the trivial maximal matching protocol sends n bits;")
	fmt.Println("Theorems 1-2 of the paper forbid anything below ~√n for MM and MIS.")
}

// Catalog: every polylog-sketchable problem the paper's introduction
// lists, run back to back on the same machinery that proves maximal
// matching and MIS cannot join them.
//
// Run with: go run ./examples/catalog
package main

import (
	"fmt"
	"log"

	"repro/internal/agm"
	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/degeneracy"
	"repro/internal/densest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/rng"
	"repro/internal/sparsify"
	"repro/internal/triangles"
)

func main() {
	src := rng.NewSource(99)
	coins := rng.NewPublicCoins(100)
	g := gen.Gnp(64, 0.25, src)
	fmt.Printf("one input graph: n=%d, m=%d, Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	// Spanning forest / connectivity [1].
	forest, err := core.Run[[]graph.Edge](agm.NewSpanningForest(agm.Config{}), g, coins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanning forest [1]:    %3d edges, valid=%v\n",
		len(forest.Output), graph.IsSpanningForest(g, forest.Output))

	// MST [1].
	wg := mst.RandomWeights(g, 4, src)
	mres, err := mst.Run(wg, agm.Config{}, coins.Derive("mst"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MST weight [1]:         est=%d exact=%d\n", mres.Estimate, mres.Exact)

	// Edge connectivity certificate [1].
	skel, err := core.Run[[]graph.Edge](agm.NewSkeleton(3, agm.Config{}), g, coins.Derive("skel"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-connectivity cert [1]: %3d edges, valid=%v\n",
		len(skel.Output), agm.VerifyCertificate(g, skel.Output, 3) == nil)

	// Cut sparsifier + min cut [2].
	spres, err := core.Run[*sparsify.Sparsifier](sparsify.New(sparsify.Config{K: 4}), g, coins.Derive("sp"))
	if err != nil {
		log.Fatal(err)
	}
	trueCut, _ := graph.GlobalMinCut(g)
	estCut, _ := graph.WeightedMinCut(g.N(), spres.Output.Weight)
	fmt.Printf("cut sparsifier [2]:     %3d of %d edges; min cut est=%.0f true=%.0f\n",
		spres.Output.Edges(), g.M(), estCut, trueCut)

	// Triangle counting [2].
	tres, err := core.Run[float64](triangles.New(0.6), g, coins.Derive("tri"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles [2]:          est=%.0f exact=%d\n", tres.Output, triangles.Exact(g))

	// Degeneracy [31].
	dres, err := core.Run[int](degeneracy.New(), g, coins.Derive("deg"))
	if err != nil {
		log.Fatal(err)
	}
	dExact, _ := degeneracy.Exact(g)
	fmt.Printf("degeneracy [31]:        est=%d exact=%d\n", dres.Output, dExact)

	// Densest subgraph [22,48].
	denres, err := core.Run[float64](densest.New(0.7), g, coins.Derive("den"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("densest subgraph [22]:  est=%.2f peeling=%.2f\n",
		denres.Output, densest.ExactPeelingDensity(g))

	// (Δ+1)-coloring [11].
	cres, err := core.Run[[]int](coloring.New(coloring.Config{MaxDegree: g.MaxDegree()}), g, coins.Derive("col"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(Δ+1)-coloring [11]:    proper=%v\n",
		graph.IsProperColoring(g, cres.Output, g.MaxDegree()+1))

	fmt.Println()
	fmt.Println("every problem above: one simultaneous round, polylog-ish sketches.")
	fmt.Println("maximal matching and MIS: provably Ω(√n / e^Θ(√log n)) — Theorems 1–2.")
}

// Matching lower bound demo: sample the paper's hard distribution D_MM,
// then watch budgeted sketching protocols fail to recover the hidden
// special matching until their budget reaches Θ(r) — Theorem 1 made
// tangible.
//
// Run with: go run ./examples/matchinglb
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/matchproto"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

func main() {
	// Base (r,t)-RS graph from a 3-AP-free set.
	rs, err := rsgraph.BuildBehrend(60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RS graph: N=%d vertices, t=%d induced matchings of size r=%d\n",
		rs.N(), rs.T(), rs.R())

	// The hard distribution: k noisy copies glued on public vertices.
	params := harddist.Params{RS: rs, K: 8, DropProb: 0.5}
	inst, err := harddist.Sample(params, rng.NewSource(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("D_MM sample: n=%d vertices, %d edges, %d public / %d unique\n",
		inst.G.N(), inst.G.M(), len(inst.PublicVertices()), 2*rs.R()*params.K)
	fmt.Printf("hidden index j* = %d; surviving special edges C = %d; goal k·r/4 = %.0f\n",
		inst.JStar, inst.SurvivedSpecialCount(), inst.Claim31Threshold())

	// Claim 3.1: every maximal matching is forced to contain almost all
	// surviving special edges.
	rep := harddist.CheckClaim31(inst, 25, rng.NewSource(2))
	fmt.Printf("claim 3.1: min unique-unique edges over %d maximal matchings = %d (exact bound %d)\n",
		rep.MatchingsTried, rep.MinUniqueUnique, rep.ExactBound)

	// Sweep the per-player budget. The referee even gets (σ, j*) for free
	// (Remark 3.6) and still needs Θ(r) reported edges per vertex.
	fmt.Println()
	fmt.Println("budget sweep (referee knows σ and j*, players are budgeted):")
	coins := rng.NewPublicCoins(3)
	verify := matchproto.RecoveredSpecialGoal(inst)
	for _, budget := range []int{1, 2, 4, 8} {
		p := &matchproto.SpecialFilter{Instance: inst, EdgesPerVertex: budget}
		wins := 0
		const trials = 10
		var bits int
		for trial := 0; trial < trials; trial++ {
			res, err := core.Run[[]graph.Edge](p, inst.G, coins.DeriveIndex(budget*100+trial))
			if err != nil {
				log.Fatal(err)
			}
			bits = res.MaxSketchBits
			if verify(res.Output) {
				wins++
			}
		}
		fmt.Printf("  %2d edges/vertex (%4d bits): recovered >= k·r/4 in %2d/%d trials\n",
			budget, bits, wins, trials)
	}
	fmt.Println()
	fmt.Printf("Theorem 1: any 0.99-correct protocol needs Ω(r) ≈ Ω(√n/e^Θ(√log n)) bits; here r=%d, n=%d\n",
		rs.R(), inst.G.N())
}

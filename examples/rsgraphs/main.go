// RS graph explorer: Behrend's 3-AP-free sets and the Ruzsa–Szemerédi
// graphs they induce — the combinatorial core of the paper's hard
// distribution (Proposition 2.1).
//
// Run with: go run ./examples/rsgraphs
package main

import (
	"fmt"
	"log"

	"repro/internal/ap3"
	"repro/internal/rsgraph"
)

func main() {
	fmt.Println("3-AP-free subsets of {0,...,m-1}:")
	fmt.Printf("%8s %10s %9s %12s\n", "m", "Behrend", "greedy", "optimum")
	for _, m := range []int{10, 15, 20, 25, 30} {
		opt, err := ap3.MaxExhaustive(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10d %9d %12d\n", m, len(ap3.Behrend(m)), len(ap3.Greedy(m)), len(opt))
	}
	fmt.Printf("%8d %10d %9d %12s\n", 1000, len(ap3.Behrend(1000)), len(ap3.Greedy(1000)), "(too large)")
	fmt.Println()
	fmt.Println("Behrend's construction wins only asymptotically; at these sizes the")
	fmt.Println("greedy (Stanley) sets are denser, so the RS builder uses the larger.")
	fmt.Println()

	for _, m := range []int{10, 60, 200} {
		rs, err := rsgraph.BuildBehrend(m)
		if err != nil {
			log.Fatal(err)
		}
		status := "verified"
		if err := rsgraph.Verify(rs); err != nil {
			status = "FAILED: " + err.Error()
		}
		fmt.Printf("m=%4d: (r=%3d, t=%4d)-RS graph on N=%5d vertices, %6d edges [%s]\n",
			m, rs.R(), rs.T(), rs.N(), rs.G.M(), status)
	}

	fmt.Println()
	fmt.Println("each of the t matchings is induced: touching its 2r vertices forces")
	fmt.Println("using its own edges — yet no player can tell which matching matters.")
	fmt.Println()

	// Show one small graph's partition explicitly.
	rs, err := rsgraph.BuildFromAPFreeSet(4, []int{0, 1, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit partition for m=4, S={0,1,3} (N=%d):\n", rs.N())
	for j, matching := range rs.Matchings {
		fmt.Printf("  M_%d:", j)
		for _, e := range matching {
			fmt.Printf(" (%d,%d)", e.U, e.V)
		}
		fmt.Println()
	}
}

// MIS reduction demo (Section 4 / Figure 2): build H from a hard matching
// instance — two copies of G plus a biclique on the public copies — run
// an MIS protocol on H, and recover the hidden matching through
// Lemma 4.1.
//
// Run with: go run ./examples/misreduction
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harddist"
	"repro/internal/misproto"
	"repro/internal/misreduce"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

func main() {
	rs, err := rsgraph.BuildBehrend(40)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := harddist.Sample(harddist.Params{RS: rs, K: 6, DropProb: 0.5}, rng.NewSource(11))
	if err != nil {
		log.Fatal(err)
	}
	h := misreduce.BuildH(inst)
	fmt.Printf("G: n=%d, m=%d   →   H: n=%d, m=%d (2 copies + public biclique)\n",
		inst.G.N(), inst.G.M(), h.N(), h.M())

	coins := rng.NewPublicCoins(12)

	// A full-information MIS protocol: the reduction recovers the exact
	// surviving special matching from the good (public-free) side.
	res, err := misreduce.Run(inst, core.NewTrivialMIS(), coins)
	if err != nil {
		log.Fatal(err)
	}
	side := "right"
	if res.Recovery.GoodLeft {
		side = "left"
	}
	fmt.Printf("trivial MIS (%d bits/G-vertex): MIS valid=%v\n", res.PerGVertexBits, res.MISValid)
	fmt.Printf("  good side = %s copy: %d true edges, %d phantoms (survived: %d, goal %.0f)\n",
		side, res.GoodTrueEdges, res.GoodPhantomEdges,
		inst.SurvivedSpecialCount(), res.Threshold)
	fmt.Printf("  reduction goal met: %v\n", res.GoalMetGood())

	// A budget-starved MIS protocol: Theorem 2 in action.
	fmt.Println()
	for _, budget := range []int{1, 8, 64} {
		res, err := misreduce.Run(inst,
			&misproto.NeighborSample{NeighborsPerVertex: budget}, coins.DeriveIndex(budget))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("neighbor-sample budget %2d (%4d bits/G-vertex): MIS valid=%-5v goal met=%v\n",
			budget, res.PerGVertexBits, res.MISValid, res.GoalMetGood())
	}
	fmt.Println()
	fmt.Println("Theorem 2: an MIS protocol with b-bit sketches yields a matching protocol")
	fmt.Println("with 2b-bit sketches on D_MM, so b = Ω(√n / e^Θ(√log n)) as well.")
}

#!/bin/sh
# bench-json: produce the committed BENCH_NNNN.json snapshot. Two
# sections: the hot-path micro-benchmarks (go test -bench, name ->
# ns/op and allocs/op) and a short loadgen run against a caching
# refereed daemon (achieved RPS, latency percentiles, cache hit rate).
# Numbers are machine-dependent snapshots for trend reading, not a CI
# gate — the gate is the SLO verdict loadgen itself computes.
#
#   BENCH_OUT=BENCH_0006.json BENCH_RPS=100 BENCH_DURATION=5s \
#       ./scripts/bench-json.sh
set -eu

OUT="${BENCH_OUT:-BENCH_0006.json}"
RPS="${BENCH_RPS:-100}"
DURATION="${BENCH_DURATION:-5s}"
ADDR="${BENCH_ADDR:-127.0.0.1:8390}"
BENCH_PAT='FieldPow|FieldInv|L0Update|L0Sample|BankUpdate|AGMSketchVertex|DynStreamApply'
BENCH_PKGS='./internal/field/ ./internal/l0/ ./internal/agm/ ./internal/dynstream/'
TMP="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "bench-json: running micro-benchmarks ($BENCH_PAT)" >&2
# shellcheck disable=SC2086
go test -run='^$' -bench="$BENCH_PAT" -benchtime=100ms -benchmem $BENCH_PKGS >"$TMP/bench.txt"

# "BenchmarkName-8  N  X ns/op  Y B/op  Z allocs/op" -> JSON entries.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (out != "") out = out ",\n"
    out = out sprintf("    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? "0" : allocs)
}
END { print out }
' "$TMP/bench.txt" >"$TMP/bench.json"

echo "bench-json: booting caching refereed on $ADDR for the loadgen pass" >&2
go build -o "$TMP/refereed" ./cmd/refereed
go build -o "$TMP/loadgen" ./cmd/loadgen
"$TMP/refereed" -addr "$ADDR" -cache-bytes 33554432 >"$TMP/refereed.log" 2>&1 &
DAEMON_PID=$!
i=0
until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "bench-json: refereed did not come up on $ADDR" >&2
        cat "$TMP/refereed.log" >&2
        exit 1
    fi
    sleep 0.2
done

"$TMP/loadgen" -target "http://$ADDR" -rps "$RPS" -duration "$DURATION" \
    -seed 6 -o "$TMP/loadgen.json" >&2

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true

{
    printf '{\n'
    printf '  "id": "%s",\n' "$(basename "$OUT" .json)"
    printf '  "generated_by": "scripts/bench-json.sh",\n'
    printf '  "go_version": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchmarks": {\n'
    cat "$TMP/bench.json"
    printf '  },\n'
    printf '  "loadgen": '
    cat "$TMP/loadgen.json"
    printf '}\n'
} >"$OUT"

echo "bench-json: wrote $OUT" >&2

#!/bin/sh
# cluster-smoke: end-to-end parity check for the referee cluster. Boots
# three caching refereed backends and a coordinator over them, runs the
# fixture sweep locally and through the coordinator, and byte-diffs the
# outputs — the coordinator must be indistinguishable from a single
# daemon. Then the chaos pass: the same sweep runs again while one
# backend is killed mid-sweep; the coordinator must fail the orphaned
# specs over to the survivors and the output must still diff clean.
set -eu

B1="${CLUSTER_B1:-127.0.0.1:8381}"
B2="${CLUSTER_B2:-127.0.0.1:8382}"
B3="${CLUSTER_B3:-127.0.0.1:8383}"
COORD="${CLUSTER_COORD:-127.0.0.1:8380}"
TMP="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/refereed" ./cmd/refereed
go build -o "$TMP/sketchlab" ./cmd/sketchlab

"$TMP/refereed" -addr "$B1" -cache-bytes 16777216 >"$TMP/b1.log" 2>&1 &
B1_PID=$!
"$TMP/refereed" -addr "$B2" -cache-bytes 16777216 >"$TMP/b2.log" 2>&1 &
B2_PID=$!
"$TMP/refereed" -addr "$B3" -cache-bytes 16777216 >"$TMP/b3.log" 2>&1 &
B3_PID=$!
PIDS="$B1_PID $B2_PID $B3_PID"

"$TMP/refereed" -coordinator "$B1,$B2,$B3" -addr "$COORD" \
    -health-interval 300ms >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
PIDS="$PIDS $COORD_PID"

wait_healthz() {
    i=0
    until curl -sf "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: $2 did not come up on $1" >&2
            cat "$TMP"/*.log >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_healthz "$B1" backend1
wait_healthz "$B2" backend2
wait_healthz "$B3" backend3
wait_healthz "$COORD" coordinator

"$TMP/sketchlab" -sweep -workers 1 >"$TMP/local.txt"

# Pass 1: healthy cluster. All 16 fixture specs go through the
# coordinator; every transcript digest must match the local run.
"$TMP/sketchlab" -remote "$COORD" -workers 8 >"$TMP/cluster.txt"
if ! diff -u "$TMP/local.txt" "$TMP/cluster.txt"; then
    echo "cluster-smoke: FAIL — cluster sweep diverges from local run" >&2
    exit 1
fi

# Pass 2: chaos. Kill one backend shortly after the sweep starts — its
# in-flight and still-queued specs must fail over to the two survivors
# without changing a byte of output.
(sleep 0.2 && kill "$B2_PID" 2>/dev/null) &
KILLER_PID=$!
"$TMP/sketchlab" -remote "$COORD" -workers 8 >"$TMP/chaos.txt"
wait "$KILLER_PID" || true
if ! diff -u "$TMP/local.txt" "$TMP/chaos.txt"; then
    echo "cluster-smoke: FAIL — sweep diverges after mid-sweep backend kill" >&2
    exit 1
fi

# The coordinator must have noticed the death: stats must list the dead
# backend as not alive once the health loop has run.
sleep 1
STATS="$(curl -sf "http://$COORD/v1/stats")"
if ! printf '%s' "$STATS" | grep -q '"alive": false'; then
    echo "cluster-smoke: FAIL — coordinator stats never marked the killed backend down" >&2
    printf '%s\n' "$STATS" >&2
    exit 1
fi

# Graceful coordinator shutdown, same as remote-smoke does for the
# daemon.
kill -TERM "$COORD_PID"
wait "$COORD_PID" || true
echo "cluster-smoke: OK — cluster sweeps byte-identical to local, failover transparent"

#!/usr/bin/env bash
# lbcalc-smoke: the lower-bound pipeline's seed-pinned regression gate.
#
# Two byte-exact diffs against committed fixtures:
#   1. the default analytic tables, pinned BEFORE the lowerbound-registry
#      refactor (testdata/prerefactor_default.txt) — proves the Bound
#      registry reproduces the original formulas;
#   2. the full obligation sweep at seed 42 (testdata/smoke.txt) — every
#      registered distribution at its smoke spec, every obligation's
#      pass/fail counts. The registry lint requires each registered
#      obligation name to appear here.
#
# Regenerate smoke.txt (only after intentionally adding obligations):
#   go run ./cmd/lbcalc -obligations -seed 42 -trials 2 > cmd/lbcalc/testdata/smoke.txt
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go run ./cmd/lbcalc > "$tmp"
diff -u cmd/lbcalc/testdata/prerefactor_default.txt "$tmp"

go run ./cmd/lbcalc -obligations -seed 42 -trials 2 > "$tmp"
diff -u cmd/lbcalc/testdata/smoke.txt "$tmp"

echo "lbcalc-smoke: OK"

#!/bin/sh
# bench-guard: the block-path performance gate run by `make check`.
#
# Measures the engine block-vs-scalar benchmark pair (EngineBlockN1k /
# EngineScalarN1k) and compares the block/scalar ns-per-op RATIO against
# the ratio recorded in bench/baseline.txt. Gating on the ratio rather
# than absolute ns/op makes the check hold on any machine: both sides of
# the pair run the identical workload in the same process moments apart,
# so host speed cancels. The gate fails when the current ratio exceeds
# the baseline ratio by more than BENCH_GUARD_TOL (default 1.10, i.e. a
# >10% relative regression of the block path).
#
#   BENCH_BASELINE=bench/baseline.txt BENCH_GUARD_TOL=1.10 \
#       ./scripts/bench-guard.sh
set -eu

BASELINE="${BENCH_BASELINE:-bench/baseline.txt}"
TOL="${BENCH_GUARD_TOL:-1.10}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT INT TERM

if [ ! -f "$BASELINE" ]; then
    echo "bench-guard: $BASELINE not found; run 'make bench-baseline' and commit it" >&2
    exit 1
fi

# min_ns FILE NAME: the fastest ns/op recorded for benchmark NAME
# (matching Benchmark<NAME> or Benchmark<NAME>-P), empty when absent.
# Minimum over -count runs is the standard noise filter for gating.
min_ns() {
    awk -v name="$2" '
        $1 ~ ("^Benchmark" name "(-[0-9]+)?$") {
            for (i = 2; i <= NF; i++)
                if ($(i) == "ns/op") { v = $(i - 1) + 0; if (best == "" || v < best + 0) best = v }
        }
        END { print best }
    ' "$1"
}

base_block="$(min_ns "$BASELINE" EngineBlockN1k)"
base_scalar="$(min_ns "$BASELINE" EngineScalarN1k)"
if [ -z "$base_block" ] || [ -z "$base_scalar" ]; then
    echo "bench-guard: $BASELINE has no EngineBlockN1k/EngineScalarN1k lines; run 'make bench-baseline' and commit it" >&2
    exit 1
fi

echo "bench-guard: measuring EngineBlockN1k vs EngineScalarN1k" >&2
go test -run='^$' -bench='EngineBlockN1k|EngineScalarN1k' -benchtime=1x -count=3 . >"$TMP"

now_block="$(min_ns "$TMP" EngineBlockN1k)"
now_scalar="$(min_ns "$TMP" EngineScalarN1k)"
if [ -z "$now_block" ] || [ -z "$now_scalar" ]; then
    echo "bench-guard: benchmark run produced no engine pair measurements:" >&2
    cat "$TMP" >&2
    exit 1
fi

ratio_base="$(awk -v b="$base_block" -v s="$base_scalar" 'BEGIN { printf "%.4f", b / s }')"
ratio_now="$(awk -v b="$now_block" -v s="$now_scalar" 'BEGIN { printf "%.4f", b / s }')"
echo "bench-guard: block/scalar ratio now $ratio_now (block $now_block ns/op, scalar $now_scalar ns/op), baseline $ratio_base, tolerance ${TOL}x" >&2

if awk -v now="$ratio_now" -v base="$ratio_base" -v tol="$TOL" 'BEGIN { exit !(now <= base * tol) }'; then
    echo "bench-guard: ok" >&2
else
    echo "bench-guard: FAIL — block path regressed: ratio $ratio_now > $ratio_base * $TOL" >&2
    echo "bench-guard: if the regression is intentional, re-run 'make bench-baseline' on a quiet machine and commit bench/baseline.txt" >&2
    exit 1
fi

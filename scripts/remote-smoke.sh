#!/bin/sh
# remote-smoke: end-to-end parity check between the in-process referee
# and the refereed daemon. Boots refereed on a loopback port, runs the
# fixture sweep locally (sequential engine) and remotely (8 workers),
# and byte-diffs the outputs — every line carries the run's transcript
# digest, so the diff failing means the networked path moved a bit.
set -eu

ADDR="${REFEREED_ADDR:-127.0.0.1:8377}"
TMP="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/refereed" ./cmd/refereed
go build -o "$TMP/sketchlab" ./cmd/sketchlab

"$TMP/refereed" -addr "$ADDR" >"$TMP/refereed.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to answer healthz (the sketchlab client retries
# connection errors too, but an explicit wait keeps the log readable).
i=0
until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "remote-smoke: refereed did not come up on $ADDR" >&2
        cat "$TMP/refereed.log" >&2
        exit 1
    fi
    sleep 0.2
done

"$TMP/sketchlab" -sweep -workers 1 >"$TMP/local.txt"
"$TMP/sketchlab" -remote "$ADDR" -workers 8 >"$TMP/remote.txt"

if ! diff -u "$TMP/local.txt" "$TMP/remote.txt"; then
    echo "remote-smoke: FAIL — remote transcripts diverge from local run" >&2
    exit 1
fi

# The sweep must cover every registry-migrated protocol; a label missing
# here means wire.SmokeSpecs lost its spec.
for label in palette-sparsification triangle-count mst-weight \
    agm-cut-sparsifier densest-subgraph-sketch degeneracy-sketch \
    agm-components equality-public-coin \
    mm-tworound mis-tworound fb-dropped-mm-tworound fb-corrupt-mis-tworound \
    semistream-matching semistream-matching-dyn; do
    if ! grep -q "$label" "$TMP/local.txt"; then
        echo "remote-smoke: FAIL — sweep is missing $label" >&2
        exit 1
    fi
done

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
echo "remote-smoke: OK — local and remote sweeps byte-identical"
cat "$TMP/local.txt"

# Convenience targets; everything is plain `go` underneath.

.PHONY: all check test test-race fuzz-smoke bench experiments experiments-full examples lint

all: check

# check is the default gate: build + vet + tests, then the race detector
# over the concurrency-bearing packages (engine scheduler, the cclique
# protocols it drives in parallel, and the fault injector that perturbs
# them from inside the worker pool).
check: test test-race

test:
	go build ./... && go vet ./... && go test ./...

test-race:
	go test -race ./internal/engine/... ./internal/cclique/... ./internal/faults/...

# fuzz-smoke gives each fuzz target a short budget — the same smoke CI
# runs (.github/workflows/ci.yml).
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzReaderNeverPanics -fuzztime=30s ./internal/bitio
	go test -run='^$$' -fuzz=FuzzTranscriptCorruption -fuzztime=30s ./internal/faults

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/sketchlab

experiments-full:
	go run ./cmd/sketchlab -scale full -seed 42

examples:
	@for ex in quickstart matchinglb misreduction coloring rsgraphs connectivity informationchain catalog; do \
		echo "=== $$ex ==="; go run ./examples/$$ex || exit 1; echo; \
	done

lint:
	gofmt -l . && go vet ./...

# Convenience targets; everything is plain `go` underneath.

.PHONY: all test bench experiments experiments-full examples lint

all: test

test:
	go build ./... && go vet ./... && go test ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/sketchlab

experiments-full:
	go run ./cmd/sketchlab -scale full -seed 42

examples:
	@for ex in quickstart matchinglb misreduction coloring rsgraphs connectivity informationchain catalog; do \
		echo "=== $$ex ==="; go run ./examples/$$ex || exit 1; echo; \
	done

lint:
	gofmt -l . && go vet ./...

# Convenience targets; everything is plain `go` underneath.

.PHONY: all check test test-race bench experiments experiments-full examples lint

all: check

# check is the default gate: build + vet + tests, then the race detector
# over the concurrency-bearing packages (engine scheduler and the cclique
# protocols it drives in parallel).
check: test test-race

test:
	go build ./... && go vet ./... && go test ./...

test-race:
	go test -race ./internal/engine/... ./internal/cclique/...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/sketchlab

experiments-full:
	go run ./cmd/sketchlab -scale full -seed 42

examples:
	@for ex in quickstart matchinglb misreduction coloring rsgraphs connectivity informationchain catalog; do \
		echo "=== $$ex ==="; go run ./examples/$$ex || exit 1; echo; \
	done

lint:
	gofmt -l . && go vet ./...

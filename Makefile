# Convenience targets; everything is plain `go` underneath.

.PHONY: all check test test-race lint-registry lbcalc-smoke fuzz-smoke remote-smoke cluster-smoke bench bench-smoke bench-baseline bench-json experiments experiments-full examples lint

# The hot-path micro-benchmarks: field exponentiation/inversion, ℓ₀
# sketch updates (scalar and banked — L0Update also matches
# L0UpdateBlock, FieldPow also matches FieldPowBlock), the columnar bank
# cycle, the per-vertex AGM sketching cost, and the dynamic-stream batch
# apply (DynStreamApply matches both the Scalar and Block variants).
# bench-smoke and the informational CI job share this selection with
# bench/baseline.txt.
BENCH_HOT := FieldPow|FieldInv|L0Update|L0Sample|BankUpdate|AGMSketchVertex|DynStreamApply
BENCH_HOT_PKGS := ./internal/field/ ./internal/l0/ ./internal/agm/ ./internal/dynstream/

# The engine-level block-vs-scalar pair the bench guard watches; the
# ratio between the two is machine-independent enough to gate on.
BENCH_ENGINE := EngineBlockN1k|EngineScalarN1k

all: check

# check is the default gate: build + vet + tests, then the race detector
# over the concurrency-bearing packages (engine scheduler, the cclique
# protocols it drives in parallel, and the fault injector that perturbs
# them from inside the worker pool), then the registry drift guard, then
# the block-vs-scalar performance guard (the allocation-regression tests
# — TestUpdateBlockZeroAlloc, TestBlockKernelsZeroAlloc — already run
# inside `test`).
check: test test-race lint-registry lbcalc-smoke bench-guard

# bench-guard fails when the columnar block path regresses by more than
# 10% relative to the scalar path, compared against the block/scalar
# ratio recorded in bench/baseline.txt. Ratios, not absolute ns/op, so
# the gate holds across machines.
bench-guard:
	./scripts/bench-guard.sh

# lint-registry fails when a registry drifts. Wire side: a package
# implementing the Sketch contract without self-registering, a
# registered name the wire cannot resolve (missing blank import in
# internal/wire/protocols.go), or a protocol with no smoke-sweep spec.
# Lowerbound side: an obligation or bound defined in source but not
# registered, a registered obligation missing from the lbcalc smoke
# fixture, or a distribution with no obligations.
lint-registry:
	go test -count=1 -run='TestEverySketchingPackageIsRegistered|TestEveryProtocolHasSmokeSpec|TestProtocolsSortedAndNonEmpty' ./internal/wire
	go test -count=1 -run='TestEveryDefinedObligationIsRegistered|TestEveryRegisteredObligationIsSmoked|TestEveryDistributionHasObligations' ./internal/lowerbound

# lbcalc-smoke byte-diffs lbcalc's analytic tables and full obligation
# sweep (seed 42) against committed fixtures — the lower-bound pipeline's
# end-to-end regression gate.
lbcalc-smoke:
	./scripts/lbcalc-smoke.sh

test:
	go build ./... && go vet ./... && go test ./...

test-race:
	go test -race ./internal/engine/... ./internal/cclique/... ./internal/faults/... \
		./internal/matchproto/... ./internal/misproto/... ./internal/protocol/... \
		./internal/wire/... ./internal/server/... ./internal/client/... \
		./internal/cache/... ./internal/cluster/... ./internal/dynstream/...

# fuzz-smoke gives each fuzz target a short budget — the same smoke CI
# runs (.github/workflows/ci.yml).
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzReaderNeverPanics -fuzztime=30s ./internal/bitio
	go test -run='^$$' -fuzz=FuzzTranscriptCorruption -fuzztime=30s ./internal/faults
	go test -run='^$$' -fuzz=FuzzWireDecodeRunSpec -fuzztime=30s ./internal/wire
	go test -run='^$$' -fuzz=FuzzWireDecodeTranscript -fuzztime=30s ./internal/wire
	go test -run='^$$' -fuzz=FuzzWireDecodeRunStats -fuzztime=30s ./internal/wire
	go test -run='^$$' -fuzz=FuzzDynStreamDecode -fuzztime=30s ./internal/dynstream

# remote-smoke is the end-to-end service parity check CI runs: boot a
# refereed daemon on a loopback port, run the fixture sweep locally at
# -workers 1 and through the daemon at -workers 8, and diff the two
# outputs — transcript digests included — byte for byte. Any divergence
# between the in-process and networked referee fails the diff.
remote-smoke:
	./scripts/remote-smoke.sh

# cluster-smoke is remote-smoke's big sibling: three caching backends
# plus a coordinator, the fixture sweep through the cluster byte-diffed
# against the local run, then the same sweep again with a backend killed
# mid-sweep — failover must keep the output identical.
cluster-smoke:
	./scripts/cluster-smoke.sh

bench:
	go test -bench=. -benchmem ./...

# bench-smoke compiles and runs each hot-path micro-benchmark exactly
# once — a seconds-long sanity pass that catches "the benchmark no longer
# builds/runs" without pretending one iteration is a measurement.
bench-smoke:
	go test -run='^$$' -bench='$(BENCH_HOT)' -benchtime=1x -benchmem $(BENCH_HOT_PKGS)

# bench-baseline refreshes bench/baseline.txt, the checked-in reference
# the CI benchstat diff compares against. Re-run on a quiet machine after
# intentional performance work and commit the result.
bench-baseline:
	mkdir -p bench
	go test -run='^$$' -bench='$(BENCH_HOT)' -benchtime=100ms -count=5 -benchmem $(BENCH_HOT_PKGS) | tee bench/baseline.txt
	go test -run='^$$' -bench='$(BENCH_ENGINE)' -benchtime=1x -count=5 -benchmem . | tee -a bench/baseline.txt

# bench-json refreshes the committed BENCH_NNNN.json snapshot: the
# hot-path micro-benchmarks plus a short loadgen run against a caching
# daemon (latency percentiles + cache hit rate). Machine-dependent; re-run
# on a quiet machine and commit when the serving path changes.
bench-json:
	./scripts/bench-json.sh

experiments:
	go run ./cmd/sketchlab

experiments-full:
	go run ./cmd/sketchlab -scale full -seed 42

examples:
	@for ex in quickstart matchinglb misreduction coloring rsgraphs connectivity informationchain catalog; do \
		echo "=== $$ex ==="; go run ./examples/$$ex || exit 1; echo; \
	done

lint:
	gofmt -l . && go vet ./...

package repro_test

// End-to-end integration: one flow from 3-AP-free sets all the way to
// Theorem 2's reduction, crossing every subsystem boundary the way the
// paper's argument does. Each stage validates the previous stage's
// output with independent verifiers.

import (
	"testing"

	"repro/internal/agm"
	"repro/internal/ap3"
	"repro/internal/cclique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/harddist"
	"repro/internal/matchproto"
	"repro/internal/misproto"
	"repro/internal/misreduce"
	"repro/internal/rng"
	"repro/internal/rsgraph"
)

func TestEndToEndLowerBoundPipeline(t *testing.T) {
	const m = 60 // r = 16: budget-1 reports surface each special edge w.p. ≈ 0.23 < 1/2
	src := rng.NewSource(2020)
	coins := rng.NewPublicCoins(3405732)

	// Stage 1: combinatorial substrate.
	set := ap3.Best(m)
	if !ap3.IsAPFree(set) {
		t.Fatal("stage 1: AP-free set invalid")
	}
	rs, err := rsgraph.BuildFromAPFreeSet(m, set)
	if err != nil {
		t.Fatalf("stage 1: %v", err)
	}
	if err := rsgraph.Verify(rs); err != nil {
		t.Fatalf("stage 1: RS verification: %v", err)
	}

	// Stage 2: hard distribution.
	params := harddist.Params{RS: rs, K: 6, DropProb: 0.5}
	inst, err := harddist.Sample(params, src)
	if err != nil {
		t.Fatalf("stage 2: %v", err)
	}
	rep := harddist.CheckClaim31(inst, 10, src)
	if !rep.ExactHolds {
		t.Fatalf("stage 2: claim 3.1 exact bound violated: %+v", rep)
	}

	// Stage 3: the budgeted matching protocol fails, the trivial one
	// succeeds (Theorem 1's phenomenon).
	verify := matchproto.RecoveredSpecialGoal(inst)
	starvedWins := 0
	var starved core.Result[[]graph.Edge]
	for trial := 0; trial < 10; trial++ {
		starved, err = core.Run[[]graph.Edge](
			&matchproto.SpecialFilter{Instance: inst, EdgesPerVertex: 1},
			inst.G, coins.DeriveIndex(trial))
		if err != nil {
			t.Fatalf("stage 3: %v", err)
		}
		if verify(starved.Output) {
			starvedWins++
		}
	}
	if starvedWins > 2 {
		t.Errorf("stage 3: budget-1 protocol met the goal %d/10 times; instance not hard", starvedWins)
	}
	full, err := core.Run[[]graph.Edge](
		&matchproto.SpecialFilter{Instance: inst, EdgesPerVertex: 1 << 20}, inst.G, coins)
	if err != nil {
		t.Fatalf("stage 3: %v", err)
	}
	if !verify(full.Output) {
		t.Error("stage 3: unbounded protocol missed the goal")
	}
	if starved.MaxSketchBits >= full.MaxSketchBits {
		t.Error("stage 3: budget accounting inverted")
	}

	// Stage 4: the MIS reduction recovers the matching from a correct
	// MIS of H (Theorem 2's engine).
	res, err := misreduce.Run(inst, core.NewTrivialMIS(), coins)
	if err != nil {
		t.Fatalf("stage 4: %v", err)
	}
	if !res.MISValid || !res.GoalMetGood() {
		t.Errorf("stage 4: reduction failed: valid=%v goalGood=%v", res.MISValid, res.GoalMetGood())
	}

	// Stage 5: the contrast — polylog spanning forest on the very same
	// hard instance's graph.
	forest, err := core.Run[[]graph.Edge](agm.NewSpanningForest(agm.Config{}), inst.G, coins)
	if err != nil {
		t.Fatalf("stage 5: %v", err)
	}
	if !graph.IsSpanningForest(inst.G, forest.Output) {
		t.Error("stage 5: AGM forest invalid on the hard instance")
	}

	// Stage 6: the two-round escape hatch solves MM and MIS on the hard
	// instance with adaptive messages.
	mm, err := cclique.Run[[]graph.Edge](matchproto.NewTwoRound(), inst.G, coins)
	if err != nil {
		t.Fatalf("stage 6: %v", err)
	}
	if !graph.IsMaximalMatching(inst.G, mm.Output) {
		t.Error("stage 6: two-round MM not maximal on the hard instance")
	}
	mis, err := cclique.Run[[]int](misproto.NewTwoRound(), inst.G, coins)
	if err != nil {
		t.Fatalf("stage 6: %v", err)
	}
	if !graph.IsMaximalIndependentSet(inst.G, mis.Output) {
		t.Error("stage 6: two-round MIS incorrect on the hard instance")
	}
}
